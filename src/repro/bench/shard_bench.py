"""Sharded-service artifact (``t12``): scaling the event-log router.

The paper's structure saturates one device; the
:class:`repro.api.ShardedGraph` router scales update throughput past it by
hash-partitioning the vertex space across N independent per-shard
structures.  This artifact prices that trade on an insert-heavy streaming
workload under the device model:

- **Ins MEdge/s** — aggregate modeled insert throughput with shards
  executing independently (router overhead + slowest shard per batch);
  **Speedup** is vs. the 1-shard service, whose router overhead is
  included so the comparison is apples-to-apples;
- **Query tax** — aggregate device *work* inflation a scatter-gather
  point-query phase pays for the same answers vs. 1 shard (per-shard
  dispatch constants fan out even though per-row work does not);
- **Snap ms** — modeled cost of assembling the global sorted-CSR
  snapshot from per-shard cached snapshots (the price analytics pay to
  run unchanged on the sharded service);
- **Cut%** — edges whose endpoints land on different shards under the
  hash partition (owned by the source's shard).

Throughput should scale ~linearly until the per-batch dispatch constants
bite; the quick CI gate keeps the 4-shard speedup ≥ 2x.
"""

from __future__ import annotations

import numpy as np

from repro.api.sharding import ShardedGraph
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.gpusim.counters import counting
from repro.gpusim.model import simulated_seconds

__all__ = ["shard_artifact"]

#: Backends priced in the full sweep (registry defaults are all directed,
#: which is what the router requires).
SHARD_BACKENDS = ("slabhash", "hornet")

#: Quick-mode subset.
QUICK_SHARD_BACKENDS = ("slabhash",)

#: Shard counts swept (1 is the router-overhead-included baseline).
SHARD_COUNTS = (1, 2, 4, 8)
QUICK_SHARD_COUNTS = (1, 2, 4)


def _insert_workload(num_vertices: int, batch_rows: int, batches: int, seed: int):
    """Seeded insert-heavy stream: ``batches`` batches of random edges."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(batches):
        src = rng.integers(0, num_vertices, batch_rows, dtype=np.int64)
        dst = rng.integers(0, num_vertices, batch_rows, dtype=np.int64)
        out.append((src, dst))
    return out


def _query_workload(num_vertices: int, rows: int, batches: int, seed: int):
    rng = np.random.default_rng(seed + 1)
    out = []
    for _ in range(batches):
        src = rng.integers(0, num_vertices, rows, dtype=np.int64)
        dst = rng.integers(0, num_vertices, rows, dtype=np.int64)
        out.append((src, dst))
    return out


def shard_artifact(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Price the sharded service: insert scaling, query tax, assembly."""
    out = ArtifactBuilder(
        "t12",
        "Table XII — sharded service: modeled insert scaling and query tax",
        [
            "Backend",
            "Shards",
            "Cut%",
            "Ins MEdge/s",
            "Speedup",
            "Query tax",
            "Snap ms",
        ],
    )
    if quick:
        backends, shard_counts = QUICK_SHARD_BACKENDS, QUICK_SHARD_COUNTS
        num_vertices, batch_rows, batches = 1 << 15, 1 << 14, 10
        query_rows, query_batches = 1 << 12, 8
    else:
        backends, shard_counts = SHARD_BACKENDS, SHARD_COUNTS
        num_vertices, batch_rows, batches = 1 << 17, 1 << 14, 24
        query_rows, query_batches = 1 << 13, 16
    inserts = _insert_workload(num_vertices, batch_rows, batches, seed)
    queries = _query_workload(num_vertices, query_rows, query_batches, seed)
    total_edges = batch_rows * batches
    for name in backends:
        base_insert_s = None
        base_query_s = None
        for shards in shard_counts:
            service = ShardedGraph.create(name, num_vertices, num_shards=shards)
            cut = float(
                np.mean(
                    [service.partitioner.cut_mask(src, dst).mean() for src, dst in inserts]
                )
            )
            for src, dst in inserts:
                service.insert_edges(src, dst)
            insert_s = service.update_costs.parallel_seconds
            for src, dst in queries:
                service.edge_exists(src, dst)
                service.degree(src)
            query_work_s = service.query_costs.serial_seconds
            with counting() as delta:
                service.snapshot()
            snap_ms = simulated_seconds(delta) * 1e3
            if shards == 1:
                base_insert_s = insert_s
                base_query_s = query_work_s
            throughput = total_edges / insert_s / 1e6
            speedup = base_insert_s / insert_s
            query_tax = query_work_s / base_query_s
            out.add_row(
                [
                    name,
                    shards,
                    cut * 100.0,
                    throughput,
                    speedup,
                    query_tax,
                    snap_ms,
                ]
            )
            key = (name, f"shards={shards}")
            out.metric(throughput, "MEdge/s", *key, "insert", backend=name, items=total_edges)
            out.metric(speedup, "x", *key, "insert_speedup", backend=name)
            out.metric(query_tax, "x_work", *key, "query_tax", backend=name)
            out.metric(snap_ms, "ms", *key, "snapshot_assembly", backend=name)
    return out.build()
