"""Workload generators for the Section V evaluation strategy.

The operation benchmarks (Section V-A) insert/delete *random* batches:
"edges are inserted or deleted between existing vertices in the graph;
duplicate edges are allowed within a batch and across the batch and the
graph" — :func:`random_edge_batch` is exactly that.  Vertex-deletion
batches sample existing vertex ids without replacement.

:func:`make_structure` is the uniform factory the benches use to pit the
structures against each other on identical inputs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import FaimGraph, GPMAGraph, HornetGraph
from repro.coo import COO
from repro.core import DynamicGraph
from repro.util.errors import ValidationError

__all__ = [
    "random_edge_batch",
    "random_vertex_batch",
    "make_structure",
    "bulk_built_structure",
    "STRUCTURES",
]

#: Names accepted by :func:`make_structure`.
STRUCTURES = ("ours", "hornet", "faimgraph", "gpma")


def random_edge_batch(
    num_vertices: int, batch_size: int, seed: int = 0, weighted: bool = False
):
    """A batch of random edges among existing vertex ids (dups allowed)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=int(batch_size), dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=int(batch_size), dtype=np.int64)
    if weighted:
        w = rng.integers(0, 2**31 - 1, size=int(batch_size), dtype=np.int64)
        return src, dst, w
    return src, dst, None


def random_vertex_batch(num_vertices: int, batch_size: int, seed: int = 0) -> np.ndarray:
    """Distinct existing vertex ids to delete (without replacement)."""
    rng = np.random.default_rng(seed)
    size = min(int(batch_size), int(num_vertices))
    return rng.choice(num_vertices, size=size, replace=False).astype(np.int64)


def make_structure(name: str, num_vertices: int, weighted: bool = False):
    """Instantiate a dynamic structure by bench name."""
    if name == "ours":
        return DynamicGraph(num_vertices, weighted=weighted)
    if name == "hornet":
        return HornetGraph(num_vertices, weighted=weighted)
    if name == "faimgraph":
        return FaimGraph(num_vertices, weighted=weighted)
    if name == "gpma":
        return GPMAGraph(num_vertices)
    raise ValidationError(f"unknown structure {name!r}; choose from {STRUCTURES}")


def bulk_built_structure(name: str, coo: COO, weighted: bool = False):
    """A structure pre-loaded with a dataset (the Section V-A setup step)."""
    g = make_structure(name, coo.num_vertices, weighted=weighted)
    g.bulk_build(coo)
    return g
