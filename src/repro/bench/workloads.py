"""Workload generators for the Section V evaluation strategy.

The operation benchmarks (Section V-A) insert/delete *random* batches:
"edges are inserted or deleted between existing vertices in the graph;
duplicate edges are allowed within a batch and across the batch and the
graph" — :func:`random_edge_batch` is exactly that.  Vertex-deletion
batches sample existing vertex ids without replacement.

:func:`make_structure` is the uniform factory the benches use to pit the
structures against each other on identical inputs; it delegates to the
:mod:`repro.api` registry, so any registered backend name (or alias, e.g.
the legacy ``"ours"`` for ``"slabhash"``) works.
"""

from __future__ import annotations

import numpy as np

from repro.api import create as _create_backend
from repro.coo import COO

__all__ = [
    "random_edge_batch",
    "random_vertex_batch",
    "make_structure",
    "bulk_built_structure",
    "STRUCTURES",
]

#: The bench comparison set (paper structures measured head-to-head);
#: :func:`make_structure` additionally accepts every registered backend.
STRUCTURES = ("ours", "hornet", "faimgraph", "gpma")


def random_edge_batch(
    num_vertices: int, batch_size: int, seed: int = 0, weighted: bool = False
):
    """A batch of random edges among existing vertex ids (dups allowed)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=int(batch_size), dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=int(batch_size), dtype=np.int64)
    if weighted:
        w = rng.integers(0, 2**31 - 1, size=int(batch_size), dtype=np.int64)
        return src, dst, w
    return src, dst, None


def random_vertex_batch(num_vertices: int, batch_size: int, seed: int = 0) -> np.ndarray:
    """Distinct existing vertex ids to delete (without replacement)."""
    rng = np.random.default_rng(seed)
    size = min(int(batch_size), int(num_vertices))
    return rng.choice(num_vertices, size=size, replace=False).astype(np.int64)


def make_structure(name: str, num_vertices: int, weighted: bool = False):
    """Instantiate a dynamic structure by registered backend name."""
    return _create_backend(name, num_vertices, weighted=weighted)


def bulk_built_structure(name: str, coo: COO, weighted: bool = False):
    """A structure pre-loaded with a dataset (the Section V-A setup step)."""
    g = make_structure(name, coo.num_vertices, weighted=weighted)
    g.bulk_build(coo)
    return g
