"""Chaos artifact (``t14``): pricing failover, degraded reads, recovery.

The hardened sharded service (:mod:`repro.api.sharding` +
:mod:`repro.persist.sharded`) promises three things under faults, and
this artifact prices each of them on an insert-heavy history at
|E| = 2^18 over 4 shards:

- **Degraded reads** — with one shard dead,
  :meth:`~repro.api.sharding.ShardedGraph.degraded_snapshot` assembles
  the global view from the live shards plus the dead shard's last cached
  snapshot.  **Overhead** is its modeled cost relative to a healthy
  fresh assemble; the quick CI gate keeps the ratio bounded (a degraded
  read re-pays the global assemble, never a per-shard rebuild);
- **Rebuild ms** — modeled cost of
  :meth:`~repro.api.sharding.ShardedGraph.rebuild_shard`: restore the
  shard's last checkpoint, replay only the WAL tail past it;
- **Cold ms** — modeled cost of re-ingesting the same shard by
  replaying its *entire* per-shard WAL from an empty backend (what
  recovery degrades to with no checkpoint); **Speedup** is their ratio
  and the quick CI gate keeps it ≥ 2x with a 2^12-row tail;
- **Scenario wall/model** — a full seeded chaos scenario
  (:func:`repro.stream.chaos.kill_rebuild_scenario`: kill mid-stream,
  serve degraded, rebuild, re-drive) run end to end, so CI exercises the
  whole fault → failover → recovery path every run.  Wall metrics are
  host-dependent and carry a loose compare tolerance
  (``t14/*_wall``).

All non-wall numbers come from the deterministic device model
(:func:`repro.gpusim.counters.counting`), so the gated ratios are exact
functions of the seed.  See ``docs/robustness.md`` for the fault model
these costs price.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.api.facade import Graph
from repro.api.sharding import ShardedGraph
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.gpusim.counters import counting
from repro.gpusim.model import simulated_seconds
from repro.persist import apply_event, scan_wal
from repro.stream.chaos import kill_rebuild_scenario, run_chaos_scenario

__all__ = ["chaos_artifact"]

#: Backends priced in the full sweep.
CHAOS_BACKENDS = ("slabhash", "hornet")
#: Quick-mode subset (the CI gate's backend).
QUICK_CHAOS_BACKENDS = ("slabhash",)

#: Total inserted rows, per-batch size, and the WAL tail (rows past the
#: last checkpoint) the rebuild replays — the same shape as the ``t13``
#: single-store gate, scattered over the shards.
TOTAL_ROWS = 1 << 18
BATCH_ROWS = 1 << 9
TAIL_ROWS = 1 << 12
NUM_SHARDS = 4
#: The shard the artifact kills and recovers.
VICTIM = 1


def _measure(backend: str, seed: int) -> dict:
    """Price degraded reads and kill → rebuild on one seeded history."""
    rng = np.random.default_rng(seed)
    num_vertices = TOTAL_ROWS // 4
    with tempfile.TemporaryDirectory(prefix="repro-t14-") as tmp:
        service = ShardedGraph.create(backend, num_vertices, num_shards=NUM_SHARDS)
        service.attach_durability(Path(tmp) / "stores", fsync="never")

        def insert_rows(rows: int) -> None:
            for _ in range(rows // BATCH_ROWS):
                src = rng.integers(0, num_vertices, BATCH_ROWS, dtype=np.int64)
                dst = rng.integers(0, num_vertices, BATCH_ROWS, dtype=np.int64)
                service.insert_edges(src, dst)

        insert_rows(TOTAL_ROWS - TAIL_ROWS)
        service.stores.checkpoint()
        insert_rows(TAIL_ROWS)

        # Healthy fresh assemble: per-shard snapshots + global placement.
        # Also populates the per-shard snapshot cache degraded reads serve.
        with counting() as delta:
            live = service.snapshot()
        fresh_model_s = simulated_seconds(delta)

        service.kill_shard(VICTIM)
        with counting() as delta:
            degraded = service.degraded_snapshot()
        degraded_model_s = simulated_seconds(delta)
        if degraded.stale_shards != (VICTIM,):  # pragma: no cover - sharding bug
            raise AssertionError("degraded read did not serve the dead shard from cache")

        rebuild_t0 = perf_counter()
        with counting() as delta:
            info = service.rebuild_shard(VICTIM)
        rebuild_wall_s = perf_counter() - rebuild_t0
        rebuild_model_s = simulated_seconds(delta)
        snap = service.snapshot()
        if not (
            np.array_equal(snap.row_ptr, live.row_ptr)
            and np.array_equal(snap.col_idx, live.col_idx)
        ):  # pragma: no cover - a failure here is a recovery bug
            raise AssertionError("rebuilt service diverged from the pre-kill snapshot")

        # Cold re-ingest baseline: the victim's entire per-shard WAL
        # replayed from empty (no checkpoint to bound the replay).
        events = scan_wal(service.stores.wal_dir(VICTIM)).events
        with counting() as delta:
            cold = Graph.create(backend, num_vertices)
            for event in events:
                apply_event(cold, event)
        cold_model_s = simulated_seconds(delta)
        service.stores.close()

    # End-to-end chaos scenario: the whole fault → degraded → rebuild →
    # re-drive path under the seeded plan (small: this is a path check
    # with a wall budget, not a throughput probe).
    scenario = kill_rebuild_scenario(1 << 8, batch=64, shard=VICTIM, seed=seed)
    scen_t0 = perf_counter()
    with run_chaos_scenario(scenario, backend, num_shards=NUM_SHARDS, fault_seed=seed) as res:
        scen_wall_s = perf_counter() - scen_t0
        scen_model_s = sum(p.model_seconds for p in res.phases)
        degraded_phases = sum(1 for p in res.phases if p.detail.get("degraded"))
    if degraded_phases == 0:  # pragma: no cover - scenario engine bug
        raise AssertionError("kill-rebuild scenario never served a degraded read")

    return {
        "fresh_model_ms": fresh_model_s * 1e3,
        "degraded_model_ms": degraded_model_s * 1e3,
        "degraded_overhead": degraded_model_s / fresh_model_s,
        "rebuild_model_ms": rebuild_model_s * 1e3,
        "cold_model_ms": cold_model_s * 1e3,
        "recovery_speedup": cold_model_s / rebuild_model_s,
        "replayed_events": info.replayed_events,
        "rebuild_wall_ms": rebuild_wall_s * 1e3,
        "scenario_wall_ms": scen_wall_s * 1e3,
        "scenario_model_ms": scen_model_s * 1e3,
    }


def chaos_artifact(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Price degraded reads and shard recovery under faults (module doc)."""
    out = ArtifactBuilder(
        "t14",
        "Table XIV — chaos: degraded reads, shard rebuild vs cold re-ingest",
        [
            "Backend",
            "|E|",
            "Shards",
            "Fresh ms",
            "Degraded ms",
            "Overhead",
            "Rebuild ms",
            "Cold ms",
            "Speedup",
        ],
    )
    backends = QUICK_CHAOS_BACKENDS if quick else CHAOS_BACKENDS
    log2_e = int(np.log2(TOTAL_ROWS))
    for name in backends:
        m = _measure(name, seed)
        out.add_row(
            [
                name,
                f"2^{log2_e}",
                NUM_SHARDS,
                m["fresh_model_ms"],
                m["degraded_model_ms"],
                m["degraded_overhead"],
                m["rebuild_model_ms"],
                m["cold_model_ms"],
                m["recovery_speedup"],
            ]
        )
        key = (f"E=2^{log2_e}", f"shards={NUM_SHARDS}", name)
        out.metric(m["fresh_model_ms"], "ms", *key, "fresh_read", backend=name)
        out.metric(m["degraded_model_ms"], "ms", *key, "degraded_read", backend=name)
        out.metric(
            m["degraded_overhead"], "ratio", *key, "degraded_read_overhead", backend=name
        )
        out.metric(m["rebuild_model_ms"], "ms", *key, "rebuild", backend=name)
        out.metric(m["cold_model_ms"], "ms", *key, "cold_reingest", backend=name)
        out.metric(
            m["recovery_speedup"], "x", *key, "recovery_speedup",
            backend=name, items=TOTAL_ROWS,
        )
        out.metric(m["rebuild_wall_ms"], "ms", *key, "rebuild_wall", backend=name)
        out.metric(m["scenario_model_ms"], "ms", *key, "scenario_model", backend=name)
        out.metric(m["scenario_wall_ms"], "ms", *key, "scenario_wall", backend=name)
    return out.build()
