"""Durability artifact (``t13``): pricing crash recovery and WAL overhead.

The durable store (:mod:`repro.persist`) trades a per-batch write-ahead
append plus periodic checkpoints for bounded-time crash recovery.  This
artifact prices both sides of that trade on an insert-heavy history of
small batches (the paper's dominant streaming pattern):

- **Recover ms** — modeled device cost of ``open_graph`` on a store with
  a checkpoint covering all but a WAL tail: bulk-restore the snapshot +
  replay only the tail;
- **Cold ms** — modeled cost of rebuilding the same graph by replaying
  the *entire* WAL from an empty backend (what recovery degrades to with
  no checkpoint); **Speedup** is their ratio, and the quick CI gate
  keeps it ≥ 3x at |E| = 2^18 with a 2^12-row tail;
- **WAL B/row** — on-disk log bytes per edge row (framing overhead over
  the 16 raw endpoint bytes; deterministic);
- **Append wall µs/batch**, **Ckpt wall ms** — measured wall-clock cost
  of the per-batch WAL append and of cutting one checkpoint.  Wall
  metrics are host-dependent and carry a loose compare tolerance.

Recovery and cold replay are measured under the device model
(:func:`repro.gpusim.counters.counting`), so the gated ratios are
deterministic for a fixed seed.  Varying the tail length prices the
checkpoint-cadence knob directly: the tail *is* the replay the last
checkpoint did not absorb.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.api.facade import Graph
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.gpusim.counters import counting
from repro.gpusim.model import simulated_seconds
from repro.persist import apply_event, open_graph, scan_wal

__all__ = ["persist_artifact"]

#: Backends priced in the full sweep.
PERSIST_BACKENDS = ("slabhash", "hornet")
#: Quick-mode subset (the CI gate's backend).
QUICK_PERSIST_BACKENDS = ("slabhash",)

#: WAL-tail lengths (rows past the last checkpoint) swept in full mode —
#: the checkpoint-cadence axis.  Quick mode pins the gate's 2^12 tail.
TAIL_ROWS = (1 << 10, 1 << 12, 1 << 14)
QUICK_TAIL_ROWS = (1 << 12,)

#: Total inserted rows and per-batch size.  Small batches are the point:
#: cold replay pays the per-batch dispatch constants |E|/batch times,
#: the checkpoint restore pays them once.
TOTAL_ROWS = 1 << 18
BATCH_ROWS = 1 << 9


def _measure(backend: str, total_rows: int, tail_rows: int, seed: int) -> dict:
    """Build one store (checkpoint cut ``tail_rows`` before the end),
    then price recovery against a full cold replay of its WAL."""
    rng = np.random.default_rng(seed)
    num_vertices = total_rows // 4
    with tempfile.TemporaryDirectory(prefix="repro-t13-") as tmp:
        store_dir = Path(tmp) / "store"
        dg = open_graph(store_dir, backend, num_vertices=num_vertices, fsync="never")
        for _ in range((total_rows - tail_rows) // BATCH_ROWS):
            src = rng.integers(0, num_vertices, BATCH_ROWS, dtype=np.int64)
            dst = rng.integers(0, num_vertices, BATCH_ROWS, dtype=np.int64)
            dg.graph.insert_edges(src, dst)
        ckpt_t0 = perf_counter()
        manifest = dg.checkpoint()
        ckpt_wall_s = perf_counter() - ckpt_t0
        ckpt_bytes = manifest.npz_path.stat().st_size
        for _ in range(tail_rows // BATCH_ROWS):
            src = rng.integers(0, num_vertices, BATCH_ROWS, dtype=np.int64)
            dst = rng.integers(0, num_vertices, BATCH_ROWS, dtype=np.int64)
            dg.graph.insert_edges(src, dst)
        wal = dg.wal
        batches = total_rows // BATCH_ROWS
        wal_stats = {
            "bytes_per_row": wal.bytes_written / wal.rows_written,
            "append_wall_us_per_batch": wal.append_seconds / batches * 1e6,
        }
        live = dg.graph.snapshot()
        dg.close()

        recover_t0 = perf_counter()
        with counting() as delta:
            recovered = open_graph(store_dir, fsync="never")
        recover_wall_s = perf_counter() - recover_t0
        recover_model_s = simulated_seconds(delta)
        snap = recovered.graph.snapshot()
        if not (
            np.array_equal(snap.row_ptr, live.row_ptr)
            and np.array_equal(snap.col_idx, live.col_idx)
        ):  # pragma: no cover - a failure here is a persist-layer bug
            raise AssertionError("recovered snapshot diverged from the live graph")
        recovered.close()

        events = scan_wal(store_dir / "wal").events
        with counting() as delta:
            cold = Graph.create(backend, num_vertices)
            for event in events:
                apply_event(cold, event)
        cold_model_s = simulated_seconds(delta)

    return {
        "recover_model_ms": recover_model_s * 1e3,
        "cold_model_ms": cold_model_s * 1e3,
        "speedup": cold_model_s / recover_model_s,
        "wal_bytes_per_row": wal_stats["bytes_per_row"],
        "append_wall_us_per_batch": wal_stats["append_wall_us_per_batch"],
        "ckpt_wall_ms": ckpt_wall_s * 1e3,
        "ckpt_mb": ckpt_bytes / 2**20,
        "recover_wall_ms": recover_wall_s * 1e3,
    }


def persist_artifact(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Price durable-store recovery vs. cold WAL replay (see module doc)."""
    out = ArtifactBuilder(
        "t13",
        "Table XIII — durable graphs: checkpoint+tail recovery vs cold WAL replay",
        [
            "Backend",
            "|E|",
            "Tail",
            "WAL B/row",
            "Append µs/batch",
            "Ckpt MB",
            "Recover ms",
            "Cold ms",
            "Speedup",
        ],
    )
    backends = QUICK_PERSIST_BACKENDS if quick else PERSIST_BACKENDS
    tails = QUICK_TAIL_ROWS if quick else TAIL_ROWS
    log2_e = int(np.log2(TOTAL_ROWS))
    for name in backends:
        for tail in tails:
            m = _measure(name, TOTAL_ROWS, tail, seed)
            out.add_row(
                [
                    name,
                    f"2^{log2_e}",
                    f"2^{int(np.log2(tail))}",
                    m["wal_bytes_per_row"],
                    m["append_wall_us_per_batch"],
                    m["ckpt_mb"],
                    m["recover_model_ms"],
                    m["cold_model_ms"],
                    m["speedup"],
                ]
            )
            key = (f"E=2^{log2_e}", f"tail=2^{int(np.log2(tail))}", name)
            out.metric(m["recover_model_ms"], "ms", *key, "recover", backend=name)
            out.metric(m["cold_model_ms"], "ms", *key, "cold_replay", backend=name)
            out.metric(
                m["speedup"], "x", *key, "recovery_speedup", backend=name, items=TOTAL_ROWS
            )
            out.metric(m["wal_bytes_per_row"], "ratio", *key, "wal_bytes_per_row", backend=name)
            out.metric(m["ckpt_mb"], "MB", *key, "ckpt_size", backend=name)
            out.metric(
                m["append_wall_us_per_batch"], "us", *key, "wal_append_wall", backend=name
            )
            out.metric(m["ckpt_wall_ms"], "ms", *key, "ckpt_wall", backend=name)
            out.metric(m["recover_wall_ms"], "ms", *key, "recover_wall", backend=name)
    return out.build()
