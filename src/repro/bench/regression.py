"""Asymptotic-scaling regression harness for the batched-update hot path.

The paper's central claim is that a batched update costs O(batch + touched
slabs), independent of how large the graph's vertex dictionary is.  A
regression that sneaks a capacity-sized scan into the per-batch path (a
``bincount(..., minlength=|V|)`` delta, a full-array ``sum()`` inside
``num_edges()``) passes every correctness test while silently destroying
the small-batch streaming regime of Tables VI and IX.  This harness exists
to catch exactly that: it measures wall-clock updates/sec for a fixed batch
size at vertex capacities three orders of magnitude apart and asserts the
throughput ratio stays near 1.

The timed region intentionally includes a ``num_edges()`` and
``num_active_vertices()`` call per batch — the aggregate reads must be O(1)
for the guard to hold at |V| = 1e6.

Usage::

    PYTHONPATH=src python -m repro.bench.regression [--backend slabhash]

or via the pytest entry in ``benchmarks/bench_regression_scaling.py``.
The guard defaults to the slab-hash structure (whose claim it protects)
but can measure any registered backend by name through :mod:`repro.api` —
useful for quantifying how the baselines' per-batch costs scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.api import create as _create_backend
from repro.bench.harness import format_table
from repro.bench.results import ArtifactBuilder, ArtifactResult

__all__ = [
    "ScalingPoint",
    "DEFAULT_CAPACITIES",
    "BATCH_SIZE",
    "measure_update_scaling",
    "throughput_ratio",
    "scaling_artifact",
]

#: Vertex capacities spanning the regimes of Table VI / Table IX.
DEFAULT_CAPACITIES = (1_000, 100_000, 1_000_000)

#: Fixed small-batch size (the streaming regime the guard protects).
BATCH_SIZE = 512


@dataclass
class ScalingPoint:
    """Measured update throughput at one vertex capacity."""

    capacity: int
    batch_size: int
    num_batches: int
    seconds: float

    @property
    def updates_per_sec(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return (self.batch_size * self.num_batches) / self.seconds


def _make_batches(capacity: int, batch_size: int, num_batches: int, seed: int):
    """Pre-generate all batches so RNG cost stays outside the timed region."""
    rng = np.random.default_rng(seed)
    return [
        (
            rng.integers(0, capacity, size=batch_size, dtype=np.int64),
            rng.integers(0, capacity, size=batch_size, dtype=np.int64),
        )
        for _ in range(num_batches)
    ]


def _warm(graph, batches, capacity: int, batch_size: int, seed: int) -> None:
    """Untimed setup: register vertices, materialize pages, warm the paths.

    Three distinct warm-ups, all part of setup per the paper's methodology:

    - the batches' source vertices are registered up front (the paper's
      ``insertVertices``-before-edges pattern), so every capacity measures
      the same steady-state work — probing existing single-bucket tables —
      rather than charging table creation only to the sparse large-|V| runs;
    - the dictionary's ``np.zeros`` arrays are written once to materialize
      their virtual pages (a long-lived graph has resident counters;
      first-touch page faults are not per-batch cost);
    - two throwaway batches exercise the full insert path (slab pool, code
      caches) before the clock starts.

    The dictionary-specific steps apply to the slab-hash structure only;
    other backends get the throwaway-batch warm-up.
    """
    if hasattr(graph, "_dict"):
        vd = graph._dict
        vd.edge_count.fill(0)
        vd.active.fill(False)
        vd.arena.table_buckets.fill(0)
        all_src = np.concatenate([src for src, _ in batches])
        graph.insert_vertices(np.unique(all_src))
    for src, dst in _make_batches(capacity, batch_size, 2, seed ^ 0xBEEF):
        graph.insert_edges(src, dst)


def _run_once(
    capacity: int, batch_size: int, num_batches: int, seed: int, backend: str
) -> float:
    """One timed streaming run: insert batches, delete a batch, poll sizes."""
    graph = _create_backend(backend, capacity, weighted=False)
    batches = _make_batches(capacity, batch_size, num_batches, seed)
    _warm(graph, batches, capacity, batch_size, seed)
    poll_active = hasattr(graph, "num_active_vertices")
    t0 = perf_counter()
    for src, dst in batches:
        graph.insert_edges(src, dst)
        graph.num_edges()
        if poll_active:
            graph.num_active_vertices()
    # One delete batch keeps the deletion path under the same guard.
    src, dst = batches[0]
    graph.delete_edges(src, dst)
    return perf_counter() - t0


def measure_update_scaling(
    capacities=DEFAULT_CAPACITIES,
    batch_size: int = BATCH_SIZE,
    num_batches: int = 16,
    repeats: int = 3,
    seed: int = 0x5CA1E,
    backend: str = "slabhash",
) -> list[ScalingPoint]:
    """Measure updates/sec at each capacity; best-of-``repeats`` wall clock.

    Graph construction and batch generation happen outside the timed
    region (the paper's methodology: setup is not part of the update cost).
    Any registered backend name works; the default is the structure whose
    O(batch) claim the guard protects.
    """
    points = []
    for cap in capacities:
        best = min(
            _run_once(int(cap), batch_size, num_batches, seed + r, backend)
            for r in range(repeats)
        )
        points.append(ScalingPoint(int(cap), batch_size, num_batches, best))
    return points


def throughput_ratio(points: list[ScalingPoint]) -> float:
    """Smallest-capacity throughput over largest-capacity throughput.

    ~1.0 when per-batch cost is capacity-independent; grows without bound
    if an O(|V|) term re-enters the hot path.  (Ratios below 1 — the large
    graph being *faster*, e.g. from shorter chains — are fine.)
    """
    if len(points) < 2:
        raise ValueError("need at least two capacities to form a ratio")
    ordered = sorted(points, key=lambda p: p.capacity)
    return ordered[0].updates_per_sec / ordered[-1].updates_per_sec


def scaling_artifact(backend: str = "slabhash", quick: bool = False) -> ArtifactResult:
    """The O(batch) scaling guard as a structured artifact.

    The per-capacity updates/sec metrics are *wall-clock* and therefore
    host-dependent; only the dimensionless small/large throughput ratio is
    meaningful across machines (the baseline comparison gives ``reg/*`` a
    correspondingly loose band — see
    :data:`repro.bench.compare.TOLERANCE_OVERRIDES`).
    """
    points = measure_update_scaling(
        repeats=2 if quick else 3,
        num_batches=8 if quick else 16,
        backend=backend,
    )
    out = ArtifactBuilder(
        "reg",
        f"Update-throughput scaling for {backend!r} (fixed batch size, growing |V|)",
        ["|V| capacity", "batch", "batches", "wall ms", "M updates/s"],
    )
    for p in points:
        out.add_row(
            [
                f"{p.capacity:,}",
                p.batch_size,
                p.num_batches,
                p.seconds * 1e3,
                p.updates_per_sec / 1e6,
            ]
        )
        out.metric(
            p.updates_per_sec / 1e6,
            "Mupd/s",
            f"cap={p.capacity}",
            backend,
            backend=backend,
            items=p.batch_size * p.num_batches,
        )
    out.metric(throughput_ratio(points), "ratio", "throughput_ratio", backend=backend)
    return out.build()


def main(argv=None) -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        default="slabhash",
        help="registered backend name to measure (default: slabhash)",
    )
    args = parser.parse_args(argv)
    art = scaling_artifact(backend=args.backend)
    print(format_table(art.title, art.headers, art.rows))
    ratio = art.results[-1].value
    print(f"small/large throughput ratio: {ratio:.3f} (target ≤ 2)")


if __name__ == "__main__":  # pragma: no cover
    main()
