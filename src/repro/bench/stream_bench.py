"""Streaming scenario artifact (``t11``): incremental vs. full recompute.

The paper's workload is phase-concurrent streams — update batches
interleaved with query and compute phases.  This artifact runs seeded
:mod:`repro.stream` scenarios twice per backend and prices each compute
phase under the two strategies:

- **full** — the recompute-from-scratch baseline a Hornet-/faimGraph-
  style pipeline pays between update phases: cold edge-set export, the
  O(E log E) snapshot sort, connected components and PageRank from a
  uniform start;
- **incr** — the facade's O(batch) delta-merged snapshot plus the
  delta-aware analytics (:class:`IncrementalConnectedComponents`
  union-find updates, :class:`IncrementalPageRank` warm-start sweeps).

Reported times are modeled device milliseconds per compute phase
(deterministic, baseline-gated); ``speedup`` is full/incr, which the
quick CI gate keeps ≥ 3x for the insert-heavy scenario at |E| = 2^18.
``incr upd`` is the incremental mode's subscriber overhead summed over
the scenario's *mutation* phases — the price of staying warm, reported so
the speedup column cannot hide it.  PageRank runs at the monitoring-grade
``STREAM_TOL`` (the two modes' sweep counts are reported side by side).
The B-tree backend joins on the small mixed scenario only: its per-edge
Python build dominates wall-clock at streaming sizes while its
facade-side delta paths are the identical protocol defaults.
"""

from __future__ import annotations

from repro.bench.harness import BenchRecord
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.stream import insert_heavy_scenario, mixed_scenario, run_scenario

__all__ = ["stream_artifact", "STREAM_TOL"]

#: PageRank tolerance for streaming compute phases (monitoring-grade:
#: per-vertex ranks stable to 1e-5 between phases).
STREAM_TOL = 1e-5

#: Vectorized backends priced on the large insert-heavy scenarios.
STREAM_BACKENDS = ("slabhash", "hornet", "faimgraph", "gpma")

#: Quick-mode subset for the 2^18 gate scenario.
QUICK_STREAM_BACKENDS = ("slabhash", "hornet")

#: All registered structures join the small mixed scenario.
MIXED_BACKENDS = ("slabhash", "btree", "hornet", "faimgraph", "gpma")

_MUTATION_KINDS = ("insert", "delete", "vertex_churn")


def _phase_records(result, kinds) -> list:
    """Phase results of the given kinds as BenchRecords (for metrics)."""
    return [
        BenchRecord(p.kind, p.wall_seconds, items=p.applied, counters=p.counters)
        for p in result.phases
        if p.kind in kinds
    ]


def stream_artifact(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Price streaming compute phases: incremental vs. full recompute."""
    out = ArtifactBuilder(
        "t11",
        "Table XI — streaming compute phases: incremental vs full recompute (ms/phase)",
        [
            "Scenario",
            "Backend",
            "Full",
            "Incr",
            "Incr upd",
            "Speedup",
            "Cold swp",
            "Warm swp",
        ],
    )
    if quick:
        panel = [
            (mixed_scenario(1 << 9, seed=seed), MIXED_BACKENDS),
            (insert_heavy_scenario(1 << 18, seed=seed), QUICK_STREAM_BACKENDS),
        ]
    else:
        panel = [
            (mixed_scenario(1 << 12, seed=seed), MIXED_BACKENDS),
            (insert_heavy_scenario(1 << 16, seed=seed), STREAM_BACKENDS),
            (insert_heavy_scenario(1 << 18, seed=seed), STREAM_BACKENDS),
        ]
    for scenario, backends in panel:
        for name in backends:
            full = run_scenario(scenario, name, mode="full", tol=STREAM_TOL)
            incr = run_scenario(scenario, name, mode="incremental", tol=STREAM_TOL)
            full_ms = full.mean_compute_model_seconds() * 1e3
            incr_ms = incr.mean_compute_model_seconds() * 1e3
            # Subscriber overhead: extra modeled time the incremental mode
            # spends inside the scenario's mutation phases to stay warm.
            upd_ms = (
                sum(incr.model_seconds(k) - full.model_seconds(k) for k in _MUTATION_KINDS) * 1e3
            )
            speedup = full_ms / incr_ms if incr_ms > 0 else 0.0
            sweeps_cold = sum(p.detail.get("pr_sweeps", 0) for p in full.compute_phases())
            sweeps_warm = sum(p.detail.get("pr_sweeps", 0) for p in incr.compute_phases())
            out.add_row(
                [
                    scenario.name,
                    name,
                    full_ms,
                    incr_ms,
                    upd_ms,
                    speedup,
                    sweeps_cold,
                    sweeps_warm,
                ]
            )
            key = (scenario.name, name)
            out.metric(
                full_ms,
                "ms",
                *key,
                "full",
                backend=name,
                records=_phase_records(full, ("compute",)),
            )
            out.metric(
                incr_ms,
                "ms",
                *key,
                "incr",
                backend=name,
                records=_phase_records(incr, ("compute",)),
            )
            out.metric(
                upd_ms,
                "ms",
                *key,
                "incr_update",
                backend=name,
                records=_phase_records(incr, _MUTATION_KINDS),
            )
            out.metric(speedup, "x", *key, "speedup", backend=name)
            out.metric(sweeps_cold, "sweeps", *key, "pr_sweeps_cold", backend=name)
            out.metric(sweeps_warm, "sweeps", *key, "pr_sweeps_warm", backend=name)
    return out.build()
