"""Streaming scenario artifact (``t11``): incremental vs. full recompute.

The paper's workload is phase-concurrent streams — update batches
interleaved with query and compute phases.  This artifact runs seeded
:mod:`repro.stream` scenarios twice per backend and prices each compute
phase under the two strategies:

- **full** — the recompute-from-scratch baseline a Hornet-/faimGraph-
  style pipeline pays between update phases: cold edge-set export, the
  O(E log E) snapshot sort, then every selected analytic from scratch;
- **incr** — the facade's O(batch) delta-merged snapshot plus the
  delta-aware analytics family (:class:`IncrementalConnectedComponents`
  union-find updates, :class:`IncrementalPageRank` warm-start sweeps,
  :class:`IncrementalTriangleCount` wedge closure of new edges,
  :class:`IncrementalBFS` / :class:`IncrementalSSSP` seeded
  re-relaxation, :class:`IncrementalKCore` region-bounded peeling).

Reported times are modeled device milliseconds per compute phase
(deterministic, baseline-gated).  Each (scenario, backend) emits one
aggregate row plus a row per analytic, sliced from the compute phases'
``analytic_model`` details; ``speedup`` is full/incr, which the quick CI
gate keeps ≥ 3x per analytic for the insert-heavy scenarios at
|E| = 2^18.  ``incr upd`` is the incremental mode's subscriber overhead
summed over the scenario's *mutation* phases — the price of staying
warm, reported so the speedup column cannot hide it.  PageRank runs at
the monitoring-grade ``STREAM_TOL`` (the two modes' sweep counts are
reported side by side).  SSSP needs weights, so it rides a separate
weighted insert-heavy scenario.  The B-tree backend joins on the small
mixed scenario only: its per-edge Python build dominates wall-clock at
streaming sizes while its facade-side delta paths are the identical
protocol defaults.
"""

from __future__ import annotations

from repro.bench.harness import BenchRecord
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.stream import insert_heavy_scenario, mixed_scenario, run_scenario

__all__ = ["stream_artifact", "STREAM_TOL", "FAMILY_ANALYTICS"]

#: PageRank tolerance for streaming compute phases (monitoring-grade:
#: per-vertex ranks stable to 1e-5 between phases).
STREAM_TOL = 1e-5

#: Vectorized backends priced on the large insert-heavy scenarios.
STREAM_BACKENDS = ("slabhash", "hornet", "faimgraph", "gpma")

#: The weight-capable subset for the SSSP scenario (gpma stores no weights).
WEIGHTED_STREAM_BACKENDS = ("slabhash", "hornet", "faimgraph")

#: Quick-mode subset for the 2^18 gate scenarios.
QUICK_STREAM_BACKENDS = ("slabhash", "hornet")

#: All registered structures join the small mixed scenario.
MIXED_BACKENDS = ("slabhash", "btree", "hornet", "faimgraph", "gpma")

#: The unweighted analytics family the insert-heavy scenarios price.
FAMILY_ANALYTICS = ("cc", "pagerank", "tc", "bfs", "kcore")

_MUTATION_KINDS = ("insert", "delete", "vertex_churn")


def _phase_records(result, kinds) -> list:
    """Phase results of the given kinds as BenchRecords (for metrics)."""
    return [
        BenchRecord(p.kind, p.wall_seconds, items=p.applied, counters=p.counters)
        for p in result.phases
        if p.kind in kinds
    ]


def _analytic_mean_ms(result, analytic: str) -> float:
    """Mean modeled ms/compute-phase of one analytic's slice."""
    phases = result.compute_phases()
    if not phases:
        return 0.0
    total = sum(p.detail.get("analytic_model", {}).get(analytic, 0.0) for p in phases)
    return total / len(phases) * 1e3


def stream_artifact(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Price streaming compute phases: incremental vs. full recompute."""
    out = ArtifactBuilder(
        "t11",
        "Table XI — streaming compute phases: incremental vs full recompute (ms/phase)",
        [
            "Scenario",
            "Backend",
            "Analytic",
            "Full",
            "Incr",
            "Incr upd",
            "Speedup",
            "Cold swp",
            "Warm swp",
        ],
    )
    if quick:
        panel = [
            (mixed_scenario(1 << 9, seed=seed), MIXED_BACKENDS, ("cc", "pagerank")),
            (
                insert_heavy_scenario(1 << 18, seed=seed),
                QUICK_STREAM_BACKENDS,
                FAMILY_ANALYTICS,
            ),
            (
                insert_heavy_scenario(1 << 18, seed=seed, weighted=True),
                QUICK_STREAM_BACKENDS,
                ("sssp",),
            ),
        ]
    else:
        panel = [
            (mixed_scenario(1 << 12, seed=seed), MIXED_BACKENDS, ("cc", "pagerank")),
            (insert_heavy_scenario(1 << 16, seed=seed), STREAM_BACKENDS, FAMILY_ANALYTICS),
            (insert_heavy_scenario(1 << 18, seed=seed), STREAM_BACKENDS, FAMILY_ANALYTICS),
            (
                insert_heavy_scenario(1 << 18, seed=seed, weighted=True),
                WEIGHTED_STREAM_BACKENDS,
                ("sssp",),
            ),
        ]
    for scenario, backends, analytics in panel:
        for name in backends:
            full = run_scenario(
                scenario, name, mode="full", tol=STREAM_TOL, analytics=analytics
            )
            incr = run_scenario(
                scenario, name, mode="incremental", tol=STREAM_TOL, analytics=analytics
            )
            full_ms = full.mean_compute_model_seconds() * 1e3
            incr_ms = incr.mean_compute_model_seconds() * 1e3
            # Subscriber overhead: extra modeled time the incremental mode
            # spends inside the scenario's mutation phases to stay warm.
            upd_ms = (
                sum(incr.model_seconds(k) - full.model_seconds(k) for k in _MUTATION_KINDS) * 1e3
            )
            speedup = full_ms / incr_ms if incr_ms > 0 else 0.0
            sweeps_cold = sum(p.detail.get("pr_sweeps", 0) for p in full.compute_phases())
            sweeps_warm = sum(p.detail.get("pr_sweeps", 0) for p in incr.compute_phases())
            out.add_row(
                [
                    scenario.name,
                    name,
                    "all",
                    full_ms,
                    incr_ms,
                    upd_ms,
                    speedup,
                    sweeps_cold,
                    sweeps_warm,
                ]
            )
            key = (scenario.name, name)
            out.metric(
                full_ms,
                "ms",
                *key,
                "full",
                backend=name,
                records=_phase_records(full, ("compute",)),
            )
            out.metric(
                incr_ms,
                "ms",
                *key,
                "incr",
                backend=name,
                records=_phase_records(incr, ("compute",)),
            )
            out.metric(
                upd_ms,
                "ms",
                *key,
                "incr_update",
                backend=name,
                records=_phase_records(incr, _MUTATION_KINDS),
            )
            out.metric(speedup, "x", *key, "speedup", backend=name)
            out.metric(sweeps_cold, "sweeps", *key, "pr_sweeps_cold", backend=name)
            out.metric(sweeps_warm, "sweeps", *key, "pr_sweeps_warm", backend=name)
            for analytic in analytics:
                a_full = _analytic_mean_ms(full, analytic)
                a_incr = _analytic_mean_ms(incr, analytic)
                a_speedup = a_full / a_incr if a_incr > 0 else 0.0
                out.add_row(
                    [scenario.name, name, analytic, a_full, a_incr, None, a_speedup, None, None]
                )
                out.metric(a_full, "ms", *key, f"{analytic}_full", backend=name)
                out.metric(a_incr, "ms", *key, f"{analytic}_incr", backend=name)
                out.metric(a_speedup, "x", *key, f"{analytic}_speedup", backend=name)
    return out.build()
