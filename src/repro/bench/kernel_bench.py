"""Kernel-tier pricing bench (``t15``): reference vs legacy vs jit per op.

Prices the four refactored kernel paths — batched insert, search, delete,
and the snapshot delta merge — under each selectable kernel tier, plus the
pre-refactor per-round re-sort insert schedule (``_resort_every_round``),
and proves the tiers interchangeable:

- ``t15/<op>/<tier>_wall_ms`` — wall-clock per op per tier.  Host-dependent;
  the baseline gives them a loose band (see
  :data:`repro.bench.compare.TOLERANCE_OVERRIDES`).  Jit wall metrics are
  emitted only when numba is actually importable — the committed baseline
  is reference-tier, so jit rows show up as informational ``new`` metrics
  on jit-enabled hosts instead of poisoning the gate.
- ``t15/<op>/jit_speedup`` — reference wall over jit wall (numba runs only).
- ``t15/<op>/jit_parity`` — **deterministic**: 1.0 iff running the same
  seeded workload through the jit tier (forced, so it works without numba
  via the uncompiled fallback) reproduces the reference tier's outputs,
  pool mutations, *and* :mod:`repro.gpusim` counter deltas bit-for-bit.
  Gated at zero tolerance; this is the counter-parity proof the baseline
  carries.
- ``t15/insert/resort_parity`` — 1.0 iff the hoisted group-order schedule
  matches the legacy per-round re-sort bit-for-bit (the satellite-1 fix's
  regression guard, priced right next to what the hoist saves).

Usage::

    PYTHONPATH=src python -m repro.bench.kernel_bench [--quick]
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.api.snapshot import CSRSnapshot, merge_csr_delta
from repro.bench.harness import format_table
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.gpusim.counters import get_counters
from repro.kernels import jit_available, use_tier
from repro.slabhash.arena import SlabArena
from repro.slabhash.delete import delete_batch
from repro.slabhash.insert import insert_batch
from repro.slabhash.search import search_batch

__all__ = ["OPS", "kernel_artifact", "op_parity", "time_op"]

#: The refactored kernel paths this artifact prices.
OPS = ("insert", "search", "delete", "merge")

# batch/table/key sizes per mode; parity runs the jit tier's *uncompiled*
# Python fallback when numba is absent, so its workload stays small.
_FULL = {
    "batch": 16384, "tables": 1024, "keys": 8192,
    "edges": 150_000, "delta": 20_000, "repeats": 3,
}
_QUICK = {"batch": 4096, "tables": 512, "keys": 2048, "edges": 30_000, "delta": 4_000, "repeats": 2}
_PARITY = {"batch": 1200, "tables": 64, "keys": 512, "edges": 5_000, "delta": 600, "repeats": 1}

_MERGE_VERTICES = 1024


def _counter_state() -> dict:
    c = get_counters()
    return {k: v for k, v in vars(c).items() if k != "_extra"}


def _update_inputs(cfg: dict, seed: int):
    rng = np.random.default_rng(seed)
    t = rng.integers(0, cfg["tables"], cfg["batch"], dtype=np.int64)
    k = rng.integers(0, cfg["keys"], cfg["batch"], dtype=np.int64)
    v = rng.integers(1, 100, cfg["batch"], dtype=np.int64)
    return t, k, v


def _fresh_arena(cfg: dict) -> SlabArena:
    arena = SlabArena(num_tables=cfg["tables"], weighted=True)
    arena.create_tables(
        np.arange(cfg["tables"], dtype=np.int64),
        np.full(cfg["tables"], 2, dtype=np.int64),
    )
    return arena


def _loaded_arena(cfg: dict, seed: int) -> SlabArena:
    """An arena pre-populated with the seeded batch (untimed setup)."""
    arena = _fresh_arena(cfg)
    t, k, v = _update_inputs(cfg, seed)
    insert_batch(arena, t, k, v)
    return arena


def _merge_inputs(cfg: dict, seed: int):
    rng = np.random.default_rng(seed ^ 0xD1F)
    v_count = _MERGE_VERTICES
    comp = np.unique(
        (rng.integers(0, v_count, cfg["edges"]).astype(np.int64) << 32)
        | rng.integers(0, v_count, cfg["edges"])
    )
    w = rng.integers(1, 100, comp.size).astype(np.int64)
    counts = np.bincount(comp >> np.int64(32), minlength=v_count)
    row_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    base = CSRSnapshot(
        row_ptr=row_ptr,
        col_idx=(comp & np.int64(0xFFFFFFFF)).astype(np.int64),
        weights=w,
        num_vertices=v_count,
    )
    ups = np.unique(
        (rng.integers(0, v_count, cfg["delta"]).astype(np.int64) << 32)
        | rng.integers(0, v_count, cfg["delta"])
    )
    uw = rng.integers(1, 100, ups.size).astype(np.int64)
    dels = np.setdiff1d(comp[::5], ups)[: cfg["delta"]]
    return base, ups, uw, dels


def _run_op(op: str, cfg: dict, seed: int, resort: bool = False):
    """Run one seeded op; return comparable outputs + the counter delta.

    Setup (arena construction, pre-population, delta generation) happens
    outside the measured window: the returned ``seconds`` covers only the
    kernel path under test.
    """
    if op == "insert":
        t, k, v = _update_inputs(cfg, seed)
        arena = _fresh_arena(cfg)
        before = _counter_state()
        t0 = perf_counter()
        out = insert_batch(arena, t, k, v, _resort_every_round=resort)
        seconds = perf_counter() - t0
        state = (out, arena.pool.keys.copy(), arena.pool.values.copy(), arena.pool.next_slab.copy())
    elif op == "search":
        arena = _loaded_arena(cfg, seed)
        t, k, _ = _update_inputs(cfg, seed ^ 0xA5)
        before = _counter_state()
        t0 = perf_counter()
        found, vals = search_batch(arena, t, k)
        seconds = perf_counter() - t0
        state = (found, vals)
    elif op == "delete":
        arena = _loaded_arena(cfg, seed)
        t, k, _ = _update_inputs(cfg, seed)
        before = _counter_state()
        t0 = perf_counter()
        out = delete_batch(arena, t, k)
        seconds = perf_counter() - t0
        state = (out, arena.pool.keys.copy())
    elif op == "merge":
        base, ups, uw, dels = _merge_inputs(cfg, seed)
        before = _counter_state()
        t0 = perf_counter()
        snap = merge_csr_delta(base, ups, uw, dels)
        seconds = perf_counter() - t0
        state = (snap.row_ptr, snap.col_idx, snap.weights)
    else:  # pragma: no cover - guarded by OPS
        raise ValueError(f"unknown op {op!r}")
    after = _counter_state()
    delta = {key: after[key] - before[key] for key in after}
    return state, delta, seconds


def time_op(op: str, cfg: dict, seed: int, resort: bool = False) -> float:
    """Best-of-repeats wall milliseconds for one op under the active tier."""
    best = min(
        _run_op(op, cfg, seed + r, resort=resort)[2] for r in range(cfg["repeats"])
    )
    return best * 1e3


def _states_equal(a, b) -> bool:
    for x, y in zip(a, b):
        if x is None or y is None:
            if x is not y:
                return False
        elif not np.array_equal(x, y):
            return False
    return True


def op_parity(op: str, seed: int) -> float:
    """1.0 iff jit and reference tiers agree bit-for-bit on ``op``.

    Agreement covers returned arrays, arena mutations, and the
    :mod:`repro.gpusim` counter delta.  Forces the jit tier so the proof
    runs (uncompiled) even where numba is missing.
    """
    ref_state, ref_delta, _ = _run_op(op, _PARITY, seed)
    with use_tier("jit", force=True):
        jit_state, jit_delta, _ = _run_op(op, _PARITY, seed)
    return 1.0 if _states_equal(ref_state, jit_state) and ref_delta == jit_delta else 0.0


def _resort_parity(seed: int) -> float:
    """1.0 iff the hoisted insert schedule matches the legacy re-sort."""
    hoisted_state, hoisted_delta, _ = _run_op("insert", _PARITY, seed)
    legacy_state, legacy_delta, _ = _run_op("insert", _PARITY, seed, resort=True)
    return (
        1.0
        if _states_equal(hoisted_state, legacy_state) and hoisted_delta == legacy_delta
        else 0.0
    )


def kernel_artifact(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Build the ``t15`` artifact: per-op tier pricing + parity proofs."""
    cfg = _QUICK if quick else _FULL
    out = ArtifactBuilder(
        "t15",
        "Kernel tiers: wall-clock per op (reference / legacy re-sort / jit) "
        "+ bit-parity proofs",
        ["op", "variant", "wall ms", "parity"],
    )
    have_jit = jit_available()
    for op in OPS:
        ref_ms = time_op(op, cfg, seed)
        out.add_row([op, "reference", ref_ms, "—"])
        out.metric(ref_ms, "ms", op, "reference_wall_ms", items=cfg["batch"])

        if op == "insert":
            legacy_ms = time_op(op, cfg, seed, resort=True)
            resort_ok = _resort_parity(seed)
            out.add_row([op, "resort(legacy)", legacy_ms, resort_ok])
            out.metric(legacy_ms, "ms", op, "resort_wall_ms", items=cfg["batch"])
            out.metric(resort_ok, "ok", op, "resort_parity")

        parity = op_parity(op, seed)
        out.metric(parity, "ok", op, "jit_parity")
        if have_jit:
            with use_tier("jit"):
                jit_ms = time_op(op, cfg, seed)
            out.add_row([op, "jit", jit_ms, parity])
            out.metric(jit_ms, "ms", op, "jit_wall_ms", items=cfg["batch"])
            out.metric(
                ref_ms / jit_ms if jit_ms > 0 else float("inf"),
                "x",
                op,
                "jit_speedup",
            )
        else:
            out.add_row([op, "jit(parity-only)", "—", parity])
    return out.build()


def main(argv=None) -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-size sweep")
    args = parser.parse_args(argv)
    art = kernel_artifact(quick=args.quick)
    print(format_table(art.title, art.headers, art.rows))
    for res in art.results:
        if res.metric.endswith("_parity"):
            print(f"{res.metric}: {'OK' if res.value == 1.0 else 'MISMATCH'}")


if __name__ == "__main__":  # pragma: no cover
    main()
