"""Machine-readable benchmark results with a versioned JSON schema.

Every bench artifact (Tables II-IX, Figures 2-3, the scaling guard)
produces an :class:`ArtifactResult`: the human-facing tabular view
(``headers``/``rows``, rendered at the edge by
:func:`repro.bench.harness.format_table`) plus a flat list of
:class:`BenchResult` metric records — one per measured value, each keyed by
a stable ``metric`` string and carrying the wall-clock seconds,
modeled-device seconds, and kernel-counter deltas behind it.  A whole run
is a :class:`SuiteResult`, which adds the environment fingerprint (git SHA,
python/numpy versions, platform, seed) that makes two JSON files
comparable.

The JSON layout is versioned via ``schema_version``; :func:`validate_suite`
rejects documents this code cannot interpret, so a stale baseline fails
loudly instead of comparing garbage.  The displayed table values are
derived from the deterministic device model (kernel counters), which is
what makes committed baselines stable across host machines — wall-clock
seconds are recorded for context but never gated on by default (see
:mod:`repro.bench.compare`).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.bench.harness import BenchRecord
from repro.util.errors import ValidationError

__all__ = [
    "SCHEMA_VERSION",
    "SUITE_KIND",
    "SchemaError",
    "BenchResult",
    "ArtifactResult",
    "ArtifactBuilder",
    "SuiteResult",
    "environment_fingerprint",
    "validate_suite",
    "metric_key",
]

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Discriminator so unrelated JSON files are rejected early.
SUITE_KIND = "repro-bench-suite"


class SchemaError(ValidationError):
    """A results document does not conform to the versioned schema."""


def metric_key(artifact: str, *parts) -> str:
    """Stable ``/``-joined metric identifier, e.g. ``t2/batch=2^10/ours``."""
    return "/".join([artifact, *map(str, parts)])


def _jsonable(value):
    """Coerce NumPy scalars/arrays into plain-JSON values (recursively)."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class BenchResult:
    """One measured metric: a value plus the measurement behind it.

    ``value`` is the number the paper-shaped table displays (device-model
    derived, deterministic for a fixed seed); ``wall_seconds`` /
    ``model_seconds`` / ``counters`` record the underlying measurement for
    the cells that correspond to a single timed call (aggregated cells sum
    them over their contributing calls).
    """

    metric: str
    value: float
    unit: str
    artifact: str
    dataset: str | None = None
    backend: str | None = None
    wall_seconds: float | None = None
    model_seconds: float | None = None
    items: int = 0
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return _jsonable(asdict(self))

    @classmethod
    def from_dict(cls, doc: dict) -> "BenchResult":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})


@dataclass
class ArtifactResult:
    """One regenerated paper artifact: tabular view + metric records."""

    artifact: str
    title: str
    headers: list
    rows: list
    results: list
    elapsed_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "artifact": self.artifact,
            "title": self.title,
            "headers": _jsonable(list(self.headers)),
            "rows": _jsonable([list(r) for r in self.rows]),
            "elapsed_seconds": float(self.elapsed_seconds),
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ArtifactResult":
        return cls(
            artifact=doc["artifact"],
            title=doc["title"],
            headers=list(doc["headers"]),
            rows=[list(r) for r in doc["rows"]],
            results=[BenchResult.from_dict(r) for r in doc.get("results", [])],
            elapsed_seconds=float(doc.get("elapsed_seconds", 0.0)),
        )


class ArtifactBuilder:
    """Incremental construction of an :class:`ArtifactResult`.

    Table/figure engines add display rows and metric records as they
    measure; :meth:`build` assembles the immutable result.
    """

    def __init__(self, artifact: str, title: str, headers: list):
        self.artifact = artifact
        self.title = title
        self.headers = list(headers)
        self.rows: list = []
        self.results: list = []

    def add_row(self, row: list) -> None:
        self.rows.append(list(row))

    def metric(
        self,
        value,
        unit: str,
        *parts,
        dataset: str | None = None,
        backend: str | None = None,
        record: BenchRecord | None = None,
        records=None,
        items: int = 0,
    ) -> BenchResult:
        """Record one metric; ``parts`` extend the artifact id into the key.

        Pass ``record`` for a metric backed by a single timed call, or
        ``records`` (an iterable of :class:`BenchRecord`) for an aggregate —
        wall/model seconds and counters are summed over the contributors.
        """
        wall = model = None
        counters: dict = {}
        contributors = [record] if record is not None else list(records or [])
        if contributors:
            wall = sum(r.seconds for r in contributors)
            model = sum(r.model_seconds for r in contributors)
            for r in contributors:
                for k, v in r.counters.items():
                    if v:
                        counters[k] = counters.get(k, 0) + int(v)
            items = items or sum(r.items for r in contributors)
        result = BenchResult(
            metric=metric_key(self.artifact, *parts),
            value=float(value),
            unit=unit,
            artifact=self.artifact,
            dataset=dataset,
            backend=backend,
            wall_seconds=wall,
            model_seconds=model,
            items=int(items),
            counters=counters,
        )
        self.results.append(result)
        return result

    def build(self, elapsed_seconds: float = 0.0) -> ArtifactResult:
        return ArtifactResult(
            artifact=self.artifact,
            title=self.title,
            headers=self.headers,
            rows=self.rows,
            results=self.results,
            elapsed_seconds=elapsed_seconds,
        )


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def environment_fingerprint(seed: int = 0, quick: bool = False) -> dict:
    """Provenance block: what produced a results file, and on what."""
    from repro.kernels import kernel_tier

    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "argv": list(sys.argv),
        "seed": int(seed),
        "quick": bool(quick),
        # Wall-clock metrics are only comparable within a kernel tier;
        # modeled counters are tier-independent by construction.
        "kernel_tier": kernel_tier(),
    }


@dataclass
class SuiteResult:
    """A full bench run: environment fingerprint + artifact results."""

    environment: dict
    artifacts: list
    schema_version: int = SCHEMA_VERSION

    def metrics(self) -> dict:
        """Flat ``{metric key: BenchResult}`` view across all artifacts."""
        out: dict = {}
        for art in self.artifacts:
            for res in art.results:
                out[res.metric] = res
        return out

    def to_dict(self) -> dict:
        return {
            "kind": SUITE_KIND,
            "schema_version": self.schema_version,
            "environment": _jsonable(self.environment),
            "artifacts": [a.to_dict() for a in self.artifacts],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, doc: dict) -> "SuiteResult":
        validate_suite(doc)
        return cls(
            environment=dict(doc["environment"]),
            artifacts=[ArtifactResult.from_dict(a) for a in doc["artifacts"]],
            schema_version=int(doc["schema_version"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "SuiteResult":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "SuiteResult":
        with open(path) as fh:
            return cls.from_json(fh.read())


def validate_suite(doc) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a readable suite."""
    if not isinstance(doc, dict):
        raise SchemaError(f"suite document must be an object, got {type(doc).__name__}")
    if doc.get("kind") != SUITE_KIND:
        raise SchemaError(f"kind must be {SUITE_KIND!r}, got {doc.get('kind')!r}")
    version = doc.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise SchemaError("schema_version must be an integer")
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"schema_version {version} is newer than supported ({SCHEMA_VERSION}); "
            "update the code or regenerate the file"
        )
    if not isinstance(doc.get("environment"), dict):
        raise SchemaError("environment must be an object")
    artifacts = doc.get("artifacts")
    if not isinstance(artifacts, list):
        raise SchemaError("artifacts must be a list")
    seen_metrics: set = set()
    for i, art in enumerate(artifacts):
        if not isinstance(art, dict):
            raise SchemaError(f"artifacts[{i}] must be an object")
        for key in ("artifact", "title", "headers", "rows"):
            if key not in art:
                raise SchemaError(f"artifacts[{i}] missing required key {key!r}")
        for j, res in enumerate(art.get("results", [])):
            if not isinstance(res, dict):
                raise SchemaError(f"artifacts[{i}].results[{j}] must be an object")
            for key in ("metric", "value", "unit", "artifact"):
                if key not in res:
                    raise SchemaError(f"artifacts[{i}].results[{j}] missing required key {key!r}")
            if not isinstance(res["value"], (int, float)) or isinstance(res["value"], bool):
                raise SchemaError(f"metric {res['metric']!r} value must be a number")
            if res["metric"] in seen_metrics:
                raise SchemaError(f"duplicate metric key {res['metric']!r}")
            seen_metrics.add(res["metric"])
