"""Evaluation harness regenerating the paper's Tables II-IX and Figures 2-3.

Layout:

- :mod:`repro.bench.workloads` — batch generators implementing Section V's
  workload definitions (random edge batches with duplicates allowed,
  vertex batches, incremental build schedules) and structure factories;
- :mod:`repro.bench.harness` — timing/throughput utilities and result
  records;
- :mod:`repro.bench.tables` — one function per paper table, returning
  structured :class:`~repro.bench.results.ArtifactResult` records
  (`table2_edge_insertion()` etc.);
- :mod:`repro.bench.figures` — the Figure 2/3 load-factor sweeps;
- :mod:`repro.bench.results` — versioned machine-readable result records
  (``BenchResult``/``SuiteResult``) with JSON round-tripping;
- :mod:`repro.bench.compare` — tolerance-banded baseline comparison;
- :mod:`repro.bench.runner` — ``python -m repro.bench.runner`` regenerates
  every artifact, prints paper-style tables, and drives ``--json`` /
  ``--compare`` / ``--update-baselines``.

The pytest-benchmark entry points live in ``benchmarks/`` at the repo root
and call into this package; committed baselines live in
``benchmarks/baselines/``.
"""

from repro.bench.compare import ComparisonReport, Tolerance, compare_suites
from repro.bench.harness import BenchRecord, format_table, time_call
from repro.bench.results import ArtifactResult, BenchResult, SuiteResult
from repro.bench.workloads import make_structure, random_edge_batch, random_vertex_batch

__all__ = [
    "ArtifactResult",
    "BenchRecord",
    "BenchResult",
    "ComparisonReport",
    "SuiteResult",
    "Tolerance",
    "compare_suites",
    "format_table",
    "make_structure",
    "random_edge_batch",
    "random_vertex_batch",
    "time_call",
]
