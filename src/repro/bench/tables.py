"""One function per paper table (Tables II-IX).

Every function regenerates its table at the scaled dataset sizes and
returns an :class:`~repro.bench.results.ArtifactResult`: the display rows
(rendered at the edge by :func:`repro.bench.harness.format_table`) plus one
:class:`~repro.bench.results.BenchResult` metric record per measured value,
keyed stably (``t2/batch=2^10/ours``) for baseline comparison.

Scale mapping (see DESIGN.md §5): paper batches 2^16..2^22 → scaled
2^10..2^16; paper vertex batches 2^16..2^20 → scaled 2^6..2^10; dynamic-TC
batches 2^22 → scaled 2^12.  faimGraph's missing large-batch rows in the
paper ("only supports batch updates of sizes less than 1M") are reproduced
by omitting faimGraph above the analogous scaled cutoff (2^14).

``quick=True`` shrinks every sweep to CI size — the four smallest datasets
(one per family), three batch sizes instead of seven — while keeping the
metric *keys* a subset-compatible shape; quick runs are compared against
quick baselines, full runs against full baselines.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.triangle_count import (
    dynamic_triangle_count,
    triangle_count_hash,
    triangle_count_sorted,
)
from repro.api import Graph as GraphFacade, create as create_backend
from repro.baselines.sorting import faimgraph_page_sort, segmented_sort_csr
from repro.bench.harness import mean, time_call
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.bench.workloads import (
    bulk_built_structure,
    make_structure,
    random_edge_batch,
    random_vertex_batch,
)
from repro.coo import COO
from repro.datasets.registry import DATASET_ORDER, DATASETS

__all__ = [
    "EDGE_BATCH_SIZES",
    "QUICK_EDGE_BATCH_SIZES",
    "VERTEX_BATCH_SIZES",
    "QUICK_VERTEX_BATCH_SIZES",
    "QUICK_DATASETS",
    "FAIMGRAPH_BATCH_LIMIT",
    "table2_edge_insertion",
    "table3_edge_deletion",
    "table4_vertex_deletion",
    "table5_bulk_build",
    "table6_incremental_build",
    "table7_static_triangle_counting",
    "table8_sort_cost",
    "table9_dynamic_triangle_counting",
]

#: Scaled analogues of the paper's 2^16..2^22 edge batches.
EDGE_BATCH_SIZES = [1 << k for k in range(10, 17)]

#: Quick-mode subset, still straddling the faimGraph cutoff below.
QUICK_EDGE_BATCH_SIZES = [1 << 10, 1 << 12, 1 << 14]

#: Scaled analogue of faimGraph's 1M batch limit (paper cap 2^20 of
#: 2^16..2^22 → scaled cap 2^14 of 2^10..2^16).
FAIMGRAPH_BATCH_LIMIT = 1 << 14

#: Scaled analogues of the paper's 2^16..2^20 vertex batches.
VERTEX_BATCH_SIZES = [1 << k for k in range(6, 11)]

#: Quick-mode subset of the vertex batch sizes.
QUICK_VERTEX_BATCH_SIZES = [1 << 6, 1 << 8, 1 << 10]

#: Quick-mode dataset panel: the smallest stand-in from each Table I family.
QUICK_DATASETS = ["luxembourg_osm", "delaunay_n20", "rgg_n_2_20_s0", "coAuthorsDBLP"]

#: Table IV's four datasets.
VERTEX_DELETION_DATASETS = ["soc-orkut", "soc-LiveJournal1", "delaunay_n23", "germany_osm"]

#: Table VI's four similar-|E| datasets.
INCREMENTAL_DATASETS = ["ldoor", "delaunay_n23", "road_usa", "soc-LiveJournal1"]


def _datasets(seed: int = 0, quick: bool = False) -> dict[str, COO]:
    names = QUICK_DATASETS if quick else DATASET_ORDER
    return {name: DATASETS[name].generate(seed) for name in names}


def _batch_label(batch: int) -> str:
    return f"2^{int(np.log2(batch))}"


# ---------------------------------------------------------------------------
# Tables II & III — batched edge insertion / deletion rates
# ---------------------------------------------------------------------------


def _edge_rate_table(
    op: str, seed: int = 0, datasets: dict[str, COO] | None = None, quick: bool = False
) -> ArtifactResult:
    """Shared engine for Tables II (insert) and III (delete).

    For each batch size, the per-dataset throughput is measured on a
    freshly bulk-built structure and the row reports the mean across
    datasets — exactly the paper's aggregation.
    """
    artifact = "t2" if op == "insert" else "t3"
    numeral, verb = ("II", "insertion") if op == "insert" else ("III", "deletion")
    out = ArtifactBuilder(
        artifact,
        f"Table {numeral} — mean edge {verb} rates (MEdge/s)",
        ["Batch size", "Hornet", "faimGraph", "Ours"],
    )
    datasets = datasets or _datasets(seed, quick)
    batch_sizes = QUICK_EDGE_BATCH_SIZES if quick else EDGE_BATCH_SIZES
    for batch in batch_sizes:
        rates: dict[str, list[float]] = {"hornet": [], "faimgraph": [], "ours": []}
        records: dict[str, list] = {"hornet": [], "faimgraph": [], "ours": []}
        for name, coo in datasets.items():
            src, dst, _ = random_edge_batch(coo.num_vertices, batch, seed=seed ^ batch)
            for structure in ("hornet", "faimgraph", "ours"):
                if structure == "faimgraph" and batch >= FAIMGRAPH_BATCH_LIMIT:
                    continue
                g = bulk_built_structure(structure, coo, weighted=False)
                if op == "insert":
                    rec, _ = time_call("ins", g.insert_edges, src, dst, items=batch)
                else:
                    rec, _ = time_call("del", g.delete_edges, src, dst, items=batch)
                rates[structure].append(rec.throughput_m)
                records[structure].append(rec)
        label = _batch_label(batch)
        row = [label]
        for structure in ("hornet", "faimgraph", "ours"):
            if not rates[structure]:
                row.append(None)
                continue
            value = mean(rates[structure])
            row.append(value)
            out.metric(
                value,
                "MEdge/s",
                f"batch={label}",
                structure,
                backend=structure,
                records=records[structure],
            )
        out.add_row(row)
    return out.build()


def table2_edge_insertion(seed=0, datasets=None, quick=False) -> ArtifactResult:
    """Table II: mean edge insertion rates (MEdge/s) per batch size."""
    return _edge_rate_table("insert", seed, datasets, quick)


def table3_edge_deletion(seed=0, datasets=None, quick=False) -> ArtifactResult:
    """Table III: mean edge deletion rates (MEdge/s) per batch size."""
    return _edge_rate_table("delete", seed, datasets, quick)


# ---------------------------------------------------------------------------
# Table IV — vertex deletion throughput
# ---------------------------------------------------------------------------


def table4_vertex_deletion(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Table IV: mean vertex deletion throughput (MVertex/s), ours vs
    faimGraph, averaged over the paper's four datasets."""
    out = ArtifactBuilder(
        "t4",
        "Table IV — mean vertex deletion throughput (MVertex/s)",
        ["Batch size", "faimGraph", "Ours"],
    )
    names = VERTEX_DELETION_DATASETS[:2] if quick else VERTEX_DELETION_DATASETS
    batch_sizes = QUICK_VERTEX_BATCH_SIZES if quick else VERTEX_BATCH_SIZES
    coos = {name: DATASETS[name].generate(seed) for name in names}
    for batch in batch_sizes:
        rates: dict[str, list[float]] = {"faimgraph": [], "ours": []}
        records: dict[str, list] = {"faimgraph": [], "ours": []}
        for name, coo in coos.items():
            vids = random_vertex_batch(coo.num_vertices, batch, seed=seed ^ batch)
            for structure in ("faimgraph", "ours"):
                if structure == "ours":
                    g = create_backend("slabhash", coo.num_vertices, weighted=False, directed=False)
                    g.bulk_build(_half(coo))
                else:
                    g = bulk_built_structure(structure, coo, weighted=False)
                rec, _ = time_call("vdel", g.delete_vertices, vids, items=vids.size)
                rates[structure].append(rec.throughput_m)
                records[structure].append(rec)
        label = _batch_label(batch)
        row = [label]
        for structure in ("faimgraph", "ours"):
            value = mean(rates[structure])
            row.append(value)
            out.metric(
                value,
                "MVertex/s",
                f"batch={label}",
                structure,
                backend=structure,
                records=records[structure],
            )
        out.add_row(row)
    return out.build()


def _half(coo: COO) -> COO:
    """One orientation of a symmetric COO (undirected builds re-mirror)."""
    keep = coo.src < coo.dst
    return COO(coo.src[keep], coo.dst[keep], coo.num_vertices, weights=None)


# ---------------------------------------------------------------------------
# Table V — bulk build
# ---------------------------------------------------------------------------


def table5_bulk_build(seed=0, datasets=None, quick=False) -> ArtifactResult:
    """Table V: bulk-build elapsed time (ms), Hornet vs ours."""
    out = ArtifactBuilder(
        "t5", "Table V — bulk build elapsed time (ms)", ["Dataset", "Hornet", "Ours"]
    )
    datasets = datasets or _datasets(seed, quick)
    for name, coo in datasets.items():
        g_h = make_structure("hornet", coo.num_vertices)
        rec_h, _ = time_call("hornet", g_h.bulk_build, coo, items=coo.num_edges)
        g_o = make_structure("ours", coo.num_vertices)
        rec_o, _ = time_call("ours", g_o.bulk_build, coo, items=coo.num_edges)
        out.add_row([name, rec_h.model_millis, rec_o.model_millis])
        for structure, rec in (("hornet", rec_h), ("ours", rec_o)):
            out.metric(
                rec.model_millis,
                "ms",
                name,
                structure,
                dataset=name,
                backend=structure,
                record=rec,
            )
    return out.build()


# ---------------------------------------------------------------------------
# Table VI — incremental build
# ---------------------------------------------------------------------------


def table6_incremental_build(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Table VI: incremental-build mean insertion rate (MEdge/s) for
    batch sizes scaled from the paper's 2^20..2^22."""
    out = ArtifactBuilder(
        "t6",
        "Table VI — incremental build rates (MEdge/s)",
        ["Batch size", "Hornet", "Ours"],
    )
    batches = [1 << 12, 1 << 13] if quick else [1 << 12, 1 << 13, 1 << 14]
    names = ["ldoor", "soc-LiveJournal1"] if quick else INCREMENTAL_DATASETS
    coos = {name: DATASETS[name].generate(seed) for name in names}
    for batch in batches:
        rates: dict[str, list[float]] = {"hornet": [], "ours": []}
        records: dict[str, list] = {"hornet": [], "ours": []}
        for name, coo in coos.items():
            shuffled = coo.permuted(seed)
            for structure in ("hornet", "ours"):
                g = make_structure(structure, coo.num_vertices)
                if structure == "ours":
                    rec, _ = time_call(
                        "inc",
                        g.incremental_build,
                        shuffled,
                        batch,
                        items=shuffled.num_edges,
                    )
                else:
                    def run_hornet(g=g, shuffled=shuffled, batch=batch):
                        for piece in shuffled.batches(batch):
                            g.insert_edges(piece.src, piece.dst)

                    rec, _ = time_call("inc", run_hornet, items=shuffled.num_edges)
                rates[structure].append(rec.throughput_m)
                records[structure].append(rec)
        label = _batch_label(batch)
        row = [label]
        for structure in ("hornet", "ours"):
            value = mean(rates[structure])
            row.append(value)
            out.metric(
                value,
                "MEdge/s",
                f"batch={label}",
                structure,
                backend=structure,
                records=records[structure],
            )
        out.add_row(row)
    return out.build()


# ---------------------------------------------------------------------------
# Table VII — static triangle counting
# ---------------------------------------------------------------------------


def table7_static_triangle_counting(seed=0, datasets=None, quick=False) -> ArtifactResult:
    """Table VII: static TC time (ms).

    Hornet/faimGraph intersect *pre-sorted* adjacency lists (the sort cost
    is excluded here and priced in Table VIII, as in the paper); ours runs
    edgeExist probes on the set variant.
    """
    out = ArtifactBuilder(
        "t7",
        "Table VII — static triangle counting time (ms)",
        ["Dataset", "Hornet", "faimGraph", "Ours", "Triangles"],
    )
    datasets = datasets or _datasets(seed, quick)
    for name, coo in datasets.items():
        g_h = bulk_built_structure("hornet", coo)
        rp_h, ci_h = g_h.sorted_adjacency()  # not timed (Table VIII's cost)
        rec_h, tri_h = time_call("hornet", triangle_count_sorted, rp_h, ci_h)

        g_f = bulk_built_structure("faimgraph", coo)
        rp_f, ci_f = g_f.sorted_adjacency()
        rec_f, tri_f = time_call("faim", triangle_count_sorted, rp_f, ci_f)

        g_o = make_structure("slabhash", coo.num_vertices)  # set variant
        g_o.bulk_build(coo)
        rec_o, tri_o = time_call("ours", triangle_count_hash, g_o)
        assert tri_h == tri_f == tri_o, (name, tri_h, tri_f, tri_o)
        out.add_row([name, rec_h.model_millis, rec_f.model_millis, rec_o.model_millis, tri_o])
        for structure, rec in (("hornet", rec_h), ("faimgraph", rec_f), ("ours", rec_o)):
            out.metric(
                rec.model_millis,
                "ms",
                name,
                structure,
                dataset=name,
                backend=structure,
                record=rec,
            )
        out.metric(tri_o, "count", name, "triangles", dataset=name)
    return out.build()


# ---------------------------------------------------------------------------
# Table VIII — sorted-adjacency maintenance cost
# ---------------------------------------------------------------------------


def table8_sort_cost(seed=0, datasets=None, quick=False) -> ArtifactResult:
    """Table VIII: CSR segmented-sort vs faimGraph paged-sort time (ms)."""
    out = ArtifactBuilder(
        "t8", "Table VIII — sort cost (ms)", ["Dataset", "Sort CSR", "Sort faimGraph"]
    )
    datasets = datasets or _datasets(seed, quick)
    for name, coo in datasets.items():
        row_ptr, col_idx, _ = coo.deduplicated().to_csr()
        shuffled = col_idx.copy()
        rng = np.random.default_rng(seed)
        # Shuffle within rows so there is actual sorting work to do.
        for lo, hi in zip(row_ptr[:-1].tolist(), row_ptr[1:].tolist()):
            if hi - lo > 1:
                rng.shuffle(shuffled[lo:hi])
        rec_csr, _ = time_call("csr", segmented_sort_csr, row_ptr, shuffled)

        g_f = bulk_built_structure("faimgraph", coo)
        rec_f, _ = time_call("faim", faimgraph_page_sort, g_f)
        out.add_row([name, rec_csr.model_millis, rec_f.model_millis])
        for structure, rec in (("csr", rec_csr), ("faimgraph", rec_f)):
            out.metric(
                rec.model_millis,
                "ms",
                name,
                structure,
                dataset=name,
                backend=structure,
                record=rec,
            )
    return out.build()


# ---------------------------------------------------------------------------
# Table IX — dynamic triangle counting
# ---------------------------------------------------------------------------


def table9_dynamic_triangle_counting(
    seed: int = 0, num_batches: int = 5, quick: bool = False
) -> ArtifactResult:
    """Table IX: cumulative insert+TC time over incremental batches
    (scaled batch 2^12), ours (hash TC) vs Hornet (re-sort + sorted TC),
    plus the cached path: ours driven through the ``Graph`` facade whose
    versioned snapshot is delta-merged per batch instead of re-sorted."""
    out = ArtifactBuilder(
        "t9",
        "Table IX — dynamic TC cumulative time (ms)",
        [
            "Dataset",
            "Iter",
            "Ours Insert",
            "Ours TC",
            "Ours Total",
            "Snap Total",
            "Hornet Insert",
            "Hornet TC",
            "Hornet Total",
            "Speedup",
        ],
    )
    batch = 1 << 12
    # Quick mode swaps in the lightest social stand-in (hollywood's dense
    # triangle structure dominates the whole quick suite otherwise).
    names = ("coAuthorsDBLP",) if quick else ("road_usa", "hollywood-2009")
    if quick:
        num_batches = min(num_batches, 3)
    for name in names:
        coo = DATASETS[name].generate(seed)
        rng = np.random.default_rng(seed)
        batches = [
            (
                rng.integers(0, coo.num_vertices, batch),
                rng.integers(0, coo.num_vertices, batch),
            )
            for _ in range(num_batches)
        ]

        g_o = make_structure("slabhash", coo.num_vertices)
        g_o.bulk_build(coo)
        steps_o = dynamic_triangle_count(g_o, batches, mode="hash")

        # Cached path: same structure behind the facade, snapshot delta-
        # merged per batch (round 1 pays the one cold sort).
        g_s = GraphFacade(make_structure("slabhash", coo.num_vertices))
        g_s.bulk_build(coo)
        steps_s = dynamic_triangle_count(g_s, batches, mode="snapshot")

        g_h = make_structure("hornet", coo.num_vertices)
        g_h.bulk_build(coo)
        steps_h = dynamic_triangle_count(g_h, batches, mode="sorted")

        cum_o = cum_h = cum_s = 0.0
        cum = {"o_ins": 0.0, "o_tc": 0.0, "h_ins": 0.0, "h_tc": 0.0}
        for so, ss, sh in zip(steps_o, steps_s, steps_h):
            assert so.triangles == sh.triangles == ss.triangles, (name, so.iteration)
            cum["o_ins"] += so.insert_model * 1e3
            cum["o_tc"] += so.count_model * 1e3
            # Hornet's sort is adjacency maintenance: booked under insert.
            cum["h_ins"] += (sh.insert_model + sh.sort_model) * 1e3
            cum["h_tc"] += sh.count_model * 1e3
            cum_s += ss.total_model * 1e3
            cum_o = cum["o_ins"] + cum["o_tc"]
            cum_h = cum["h_ins"] + cum["h_tc"]
            out.add_row(
                [
                    name,
                    so.iteration,
                    cum["o_ins"],
                    cum["o_tc"],
                    cum_o,
                    cum_s,
                    cum["h_ins"],
                    cum["h_tc"],
                    cum_h,
                    cum_h / cum_o if cum_o else float("inf"),
                ]
            )
        # Gate on the final cumulative totals (the paper's bottom rows).
        out.metric(cum_o, "ms", name, "ours_total", dataset=name, backend="ours")
        out.metric(cum_s, "ms", name, "ours_snap_total", dataset=name, backend="ours")
        out.metric(cum_h, "ms", name, "hornet_total", dataset=name, backend="hornet")
        out.metric(cum_h / cum_o if cum_o else float("inf"), "x", name, "speedup", dataset=name)
        out.metric(
            cum_h / cum_s if cum_s else float("inf"), "x", name, "snap_speedup", dataset=name
        )
        out.metric(steps_o[-1].triangles, "count", name, "triangles", dataset=name)
    return out.build()
