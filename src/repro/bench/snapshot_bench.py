"""Snapshot cost artifact (``t10``): cold vs. cached vs. incremental.

The paper's usage model is phase-concurrent — update phases mutate the
structure, compute phases read a sorted-CSR snapshot.  This artifact prices
the three ways a compute phase can obtain that snapshot after the versioned
cache landed:

- **cold** — the first snapshot: full slab/page export plus the
  O(E log E) whole-edge-set sort (the re-sort cost Table VIII prices);
- **cached** — snapshot of an *unchanged* graph: the version check hits
  the cache, zero slab reads and zero sorts;
- **incremental** — snapshot after one small edge batch applied through
  the :class:`repro.api.Graph` facade: the O(batch) delta is sorted and
  merged into the cached sorted CSR in O(E + B log B).

Reported times are modeled device milliseconds (deterministic, baseline-
gated); the ``cold/incr`` column is the speedup the delta-merge buys over
rebuilding, which the quick CI gate keeps ≥ 2x at |E| = 2^18 with 2^9-edge
deltas.  The B-tree backend is exercised by the contract tests instead:
its per-edge Python build dominates wall-clock at these sizes while its
snapshot path is the identical protocol default.
"""

from __future__ import annotations

import numpy as np

from repro.api import Graph, create as create_backend
from repro.bench.harness import time_call
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.bench.workloads import random_edge_batch
from repro.coo import COO

__all__ = ["snapshot_artifact", "SNAPSHOT_BACKENDS", "QUICK_SNAPSHOT_BACKENDS"]

#: Vectorized backends priced head-to-head (full mode).
SNAPSHOT_BACKENDS = ("slabhash", "hornet", "faimgraph", "gpma")

#: Quick-mode subset (keeps the CI suite fast).
QUICK_SNAPSHOT_BACKENDS = ("slabhash", "hornet")

#: Live edge-set sizes; quick mode keeps 2^18 (the gate's floor).
EDGE_COUNTS = [1 << 14, 1 << 16, 1 << 18]
QUICK_EDGE_COUNTS = [1 << 14, 1 << 18]

#: Delta batch sizes merged into the cached snapshot.
DELTA_SIZES = [1 << 7, 1 << 9, 1 << 11]
QUICK_DELTA_SIZES = [1 << 9]


def _log2_label(x: int) -> str:
    return f"2^{int(np.log2(x))}"


def snapshot_artifact(seed: int = 0, quick: bool = False) -> ArtifactResult:
    """Price cold/cached/incremental snapshots across backends and sizes."""
    out = ArtifactBuilder(
        "t10",
        "Table X — snapshot cost: cold vs cached vs incremental (ms)",
        ["|E|", "Delta", "Backend", "Cold", "Cached", "Incremental", "Cold/Incr"],
    )
    backends = QUICK_SNAPSHOT_BACKENDS if quick else SNAPSHOT_BACKENDS
    edge_counts = QUICK_EDGE_COUNTS if quick else EDGE_COUNTS
    delta_sizes = QUICK_DELTA_SIZES if quick else DELTA_SIZES
    for num_edges in edge_counts:
        num_vertices = max(num_edges // 4, 1024)
        src, dst, _ = random_edge_batch(num_vertices, num_edges, seed=seed ^ num_edges)
        base = COO(src, dst, num_vertices)
        for batch in delta_sizes:
            bs, bd, _ = random_edge_batch(num_vertices, batch, seed=seed ^ batch ^ 0x5A)
            for name in backends:
                backend = create_backend(name, num_vertices)
                backend.bulk_build(base)
                g = Graph(backend)
                rec_cold, snap = time_call("cold", g.snapshot)
                rec_cached, snap2 = time_call("cached", g.snapshot)
                assert snap2 is snap, name  # cache hit must be identity
                g.insert_edges(bs, bd)
                rec_incr, _ = time_call("incr", g.snapshot)
                speedup = (
                    rec_cold.model_seconds / rec_incr.model_seconds
                    if rec_incr.model_seconds > 0
                    else 0.0
                )
                e_label, b_label = _log2_label(num_edges), _log2_label(batch)
                out.add_row(
                    [
                        e_label,
                        b_label,
                        name,
                        rec_cold.model_millis,
                        rec_cached.model_millis,
                        rec_incr.model_millis,
                        speedup,
                    ]
                )
                key = (f"E={e_label}", f"batch={b_label}", name)
                for tier, rec in (("cold", rec_cold), ("cached", rec_cached), ("incr", rec_incr)):
                    out.metric(
                        rec.model_millis,
                        "ms",
                        *key,
                        tier,
                        backend=name,
                        record=rec,
                        items=num_edges if tier != "incr" else batch,
                    )
                out.metric(speedup, "x", *key, "speedup", backend=name)
    return out.build()
