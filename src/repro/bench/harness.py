"""Timing utilities and result records for the bench harness.

Each measurement captures two times:

- **wall-clock seconds** of the vectorized Python kernels (what
  pytest-benchmark also measures), and
- **modeled device seconds** from the calibrated cost model
  (:mod:`repro.gpusim.model`), computed from the kernel-counter delta.

The paper-shaped tables report the modeled time: Python wall-clock inverts
the sort-vs-probe cost ratio the paper measures (NumPy's compiled sort is
disproportionately cheap against interpreted probe rounds), while the
counter-based model prices the same algorithmic work a TITAN V would
execute.  Timings follow the paper's methodology: setup, batch generation
and validation happen outside the timed/counted region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.gpusim.counters import get_counters
from repro.gpusim.model import simulated_seconds

__all__ = ["BenchRecord", "time_call", "format_table", "mean"]


@dataclass
class BenchRecord:
    """One timed operation (wall-clock + modeled device time)."""

    label: str
    seconds: float
    items: int = 0
    counters: dict = field(default_factory=dict)

    @property
    def model_seconds(self) -> float:
        """Modeled device time for the counted work."""
        return simulated_seconds(self.counters)

    @property
    def model_millis(self) -> float:
        return self.model_seconds * 1e3

    @property
    def throughput_m(self) -> float:
        """Million items per modeled device second (MEdge/s, MVertex/s)."""
        sec = self.model_seconds
        if sec <= 0:
            return float("inf")
        return self.items / sec / 1e6

    @property
    def wall_throughput_m(self) -> float:
        """Million items per wall-clock second."""
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds / 1e6

    @property
    def millis(self) -> float:
        """Wall-clock milliseconds."""
        return self.seconds * 1e3


def time_call(
    label: str, fn: Callable, *args, items: int = 0, **kwargs
) -> tuple[BenchRecord, object]:
    """Time one call; returns (record, fn's return value)."""
    before = get_counters().snapshot()
    t0 = perf_counter()
    result = fn(*args, **kwargs)
    seconds = perf_counter() - t0
    delta = get_counters().diff(before)
    return BenchRecord(label, seconds, items=items, counters=delta), result


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render a paper-style fixed-width text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if cell is None:
        return "—"
    return str(cell)
