"""Figure 2 and Figure 3 load-factor sweeps.

The paper builds RMAT graphs (2^20 vertices, 15M-135M edges → average
degree ≈ 14-129) at different load factors and reports, against the
resulting *average chain length*:

- Fig. 2a — insertion throughput (drops ~2.5x by chain length 5);
- Fig. 2b — memory utilization (rises toward 1);
- Fig. 2c — memory usage in MB (falls as fewer buckets are allocated);
- Fig. 3  — static triangle-counting time: slow at very low load factor
  (iterating sparse lists touches many near-empty slabs) and at high load
  factor (probes walk long chains), optimal near 0.7.

Scaled setup: RMAT scale 12 with edge factors 16-128 reproduces the
paper's degree range at 1/256 the vertex count.  "Load factor" is the
bucket-sizing parameter ``lf`` in ``buckets = ceil(d / (lf * Bc))``: lf < 1
leaves slack per bucket, lf ≫ 1 forces multi-slab chains, so sweeping lf
sweeps the x-axis of all four plots.  Figure 2 uses the weighted map
variant (15 lanes/slab, as when edge values are stored); Figure 3 uses the
set variant on the symmetrized graph, like the paper's TC experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.triangle_count import triangle_count_hash
from repro.api import create as create_backend
from repro.bench.harness import time_call
from repro.bench.results import ArtifactBuilder, ArtifactResult
from repro.datasets.rmat import rmat_graph

__all__ = [
    "LoadFactorPoint",
    "figure2_sweep",
    "figure3_sweep",
    "figure2_artifact",
    "figure3_artifact",
    "points_as_rows",
    "LOAD_FACTORS",
    "EDGE_FACTORS",
    "QUICK_EDGE_FACTORS",
    "TC_EDGE_FACTORS",
    "QUICK_TC_EDGE_FACTORS",
]

#: Sizing load factors realizing average chain lengths ≈ 0.3 .. 5.
LOAD_FACTORS = [0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0]

#: Scaled analogues of the paper's 15M..135M-edge series (avg deg 16..128).
EDGE_FACTORS = [16, 32, 64, 96, 128]

#: Quick-mode degree series: the sweep's two extremes.
QUICK_EDGE_FACTORS = [16, 64]

#: Smaller degree series for the (probe-heavy) Figure 3 sweep.
TC_EDGE_FACTORS = [8, 24, 48]

#: Quick-mode Figure 3 degree series.
QUICK_TC_EDGE_FACTORS = [8, 24]


@dataclass
class LoadFactorPoint:
    """One point of the Figure 2/3 sweeps (model-time metrics)."""

    edge_factor: int
    load_factor: float
    mean_chain_length: float
    insertion_rate_medges: float
    memory_utilization: float
    memory_mb: float
    tc_seconds: float | None = None
    num_edges: int = 0


def figure2_sweep(
    scale: int = 12, seed: int = 0, edge_factors=None
) -> list[LoadFactorPoint]:
    """Fig. 2a/2b/2c: build each (edge factor, load factor) pair and
    measure insertion rate, utilization, and memory."""
    points = []
    for ef in edge_factors if edge_factors is not None else EDGE_FACTORS:
        coo = rmat_graph(scale, ef, seed=seed)
        for lf in LOAD_FACTORS:
            g = create_backend("slabhash", coo.num_vertices, weighted=True, load_factor=lf)
            rec, _ = time_call("build", g.bulk_build, coo, items=coo.num_edges)
            st = g.stats()
            points.append(
                LoadFactorPoint(
                    edge_factor=ef,
                    load_factor=lf,
                    mean_chain_length=st.mean_bucket_load,
                    insertion_rate_medges=rec.throughput_m,
                    memory_utilization=st.memory_utilization,
                    memory_mb=st.memory_bytes / 2**20,
                    num_edges=coo.num_edges,
                )
            )
    return points


def figure3_sweep(
    scale: int = 11, seed: int = 0, edge_factors=None
) -> list[LoadFactorPoint]:
    """Fig. 3: static TC model time versus chain length on undirected RMAT."""
    points = []
    for ef in edge_factors if edge_factors is not None else TC_EDGE_FACTORS:
        coo = rmat_graph(scale, ef, seed=seed).symmetrized().deduplicated()
        for lf in LOAD_FACTORS:
            g = create_backend("slabhash", coo.num_vertices, weighted=False, load_factor=lf)
            rec_b, _ = time_call("build", g.bulk_build, coo, items=coo.num_edges)
            st = g.stats()
            rec_tc, _ = time_call("tc", triangle_count_hash, g)
            points.append(
                LoadFactorPoint(
                    edge_factor=ef,
                    load_factor=lf,
                    mean_chain_length=st.mean_bucket_load,
                    insertion_rate_medges=rec_b.throughput_m,
                    memory_utilization=st.memory_utilization,
                    memory_mb=st.memory_bytes / 2**20,
                    tc_seconds=rec_tc.model_seconds,
                    num_edges=coo.num_edges,
                )
            )
    return points


def figure2_artifact(scale=12, seed=0, quick=False) -> ArtifactResult:
    """Figure 2 sweep as a structured artifact with per-point metrics."""
    efs = QUICK_EDGE_FACTORS if quick else None
    points = figure2_sweep(scale=10 if quick else scale, seed=seed, edge_factors=efs)
    return _points_artifact("f2", "Figure 2 — load-factor sweep (RMAT)", points)


def figure3_artifact(scale=12, seed=0, quick=False) -> ArtifactResult:
    """Figure 3 sweep as a structured artifact with per-point metrics."""
    efs = QUICK_TC_EDGE_FACTORS if quick else None
    points = figure3_sweep(scale=10 if quick else scale, seed=seed, edge_factors=efs)
    return _points_artifact("f3", "Figure 3 — TC time vs chain length (RMAT)", points, with_tc=True)


def _points_artifact(
    artifact: str, title: str, points: list[LoadFactorPoint], with_tc: bool = False
) -> ArtifactResult:
    headers, rows = points_as_rows(points, with_tc=with_tc)
    out = ArtifactBuilder(artifact, title, headers)
    for p, row in zip(points, rows):
        out.add_row(row)
        at = (f"ef={p.edge_factor}", f"lf={p.load_factor:g}")
        out.metric(p.insertion_rate_medges, "MEdge/s", *at, "insert")
        out.metric(p.mean_chain_length, "chain", *at, "chain")
        out.metric(p.memory_utilization, "util", *at, "util")
        out.metric(p.memory_mb, "MB", *at, "mem")
        if with_tc:
            out.metric((p.tc_seconds or 0.0) * 1e3, "ms", *at, "tc")
    return out.build()


def points_as_rows(points: list[LoadFactorPoint], with_tc: bool = False):
    """Tabular form for format_table / CSV export."""
    headers = [
        "Edge factor",
        "Load factor",
        "Chain length",
        "Insert MEdge/s",
        "Mem util",
        "Mem MB",
    ]
    if with_tc:
        headers.append("TC ms")
    rows = []
    for p in points:
        row = [
            p.edge_factor,
            p.load_factor,
            p.mean_chain_length,
            p.insertion_rate_medges,
            p.memory_utilization,
            p.memory_mb,
        ]
        if with_tc:
            row.append((p.tc_seconds or 0.0) * 1e3)
        rows.append(row)
    return headers, rows
