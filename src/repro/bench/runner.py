"""Regenerate every paper artifact: ``python -m repro.bench.runner``.

Runs Tables II-IX and the Figure 2/3 sweeps in paper order and prints each
as a fixed-width table.  Pass ``--quick`` to shrink the sweeps (used by CI
and the integration test); pass table ids (``t2 t7 f2`` ...) to run a
subset.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.bench.figures import figure2_sweep, figure3_sweep, points_as_rows
from repro.bench.harness import format_table
from repro.bench import tables as T

__all__ = ["main"]

_ARTIFACTS = {
    "t2": ("Table II — mean edge insertion rates (MEdge/s)", T.table2_edge_insertion),
    "t3": ("Table III — mean edge deletion rates (MEdge/s)", T.table3_edge_deletion),
    "t4": ("Table IV — mean vertex deletion throughput (MVertex/s)", T.table4_vertex_deletion),
    "t5": ("Table V — bulk build elapsed time (ms)", T.table5_bulk_build),
    "t6": ("Table VI — incremental build rates (MEdge/s)", T.table6_incremental_build),
    "t7": ("Table VII — static triangle counting time (ms)", T.table7_static_triangle_counting),
    "t8": ("Table VIII — sort cost (ms)", T.table8_sort_cost),
    "t9": ("Table IX — dynamic TC cumulative time (ms)", T.table9_dynamic_triangle_counting),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="*", default=[], help="subset: t2..t9 f2 f3")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true", help="smaller sweeps")
    args = parser.parse_args(argv)

    wanted = [a.lower() for a in args.artifacts] or list(_ARTIFACTS) + ["f2", "f3"]
    for key in wanted:
        t0 = perf_counter()
        if key in _ARTIFACTS:
            title, fn = _ARTIFACTS[key]
            headers, rows = fn(seed=args.seed)
            print(format_table(title, headers, rows))
        elif key == "f2":
            scale = 10 if args.quick else 12
            pts = figure2_sweep(scale=scale, seed=args.seed)
            headers, rows = points_as_rows(pts)
            print(format_table("Figure 2 — load-factor sweep (RMAT)", headers, rows))
        elif key == "f3":
            scale = 10 if args.quick else 12
            pts = figure3_sweep(scale=scale, seed=args.seed)
            headers, rows = points_as_rows(pts, with_tc=True)
            print(format_table("Figure 3 — TC time vs chain length (RMAT)", headers, rows))
        else:
            print(f"unknown artifact {key!r}; valid: {list(_ARTIFACTS) + ['f2', 'f3']}")
            return 2
        print(f"[{key} took {perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
