"""Tolerance-banded comparison of a bench run against a persisted baseline.

Given two :class:`~repro.bench.results.SuiteResult` documents, compare
every baseline metric against the current run and classify it:

- ``pass``  — within the warn band (or an improvement);
- ``warn``  — regressed past the warn threshold but inside the fail band;
- ``fail``  — regressed past the fail threshold;
- ``missing`` — present in the baseline but absent from the current run
  (a silently dropped measurement; counts as failure by default);
- ``new``   — present in the current run only (informational).

Direction comes from the metric's unit: throughput units regress downward,
time/size units regress upward, everything else is banded in both
directions.  Thresholds are *relative* and can be overridden per metric via
``fnmatch`` patterns (``{"t9/*": Tolerance(warn=0.05, fail=0.10)}``), most
specific match winning by longest pattern.

Only the table-facing ``value`` fields — which derive from the
deterministic device model — are gated.  Wall-clock seconds vary by host
and are deliberately not compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.bench.harness import format_table
from repro.bench.results import SuiteResult

__all__ = [
    "Tolerance",
    "DEFAULT_TOLERANCE",
    "TOLERANCE_OVERRIDES",
    "HIGHER_IS_BETTER_UNITS",
    "LOWER_IS_BETTER_UNITS",
    "MetricComparison",
    "ComparisonReport",
    "compare_suites",
]


@dataclass(frozen=True)
class Tolerance:
    """Relative regression thresholds for one metric (or a pattern)."""

    warn: float = 0.10
    fail: float = 0.25

    def __post_init__(self):
        if self.warn < 0 or self.fail < 0:
            raise ValueError("tolerances must be non-negative")
        if self.warn > self.fail:
            raise ValueError(f"warn ({self.warn}) must not exceed fail ({self.fail})")


#: Applied when no override pattern matches.  The device model is
#: deterministic for a fixed seed, so the band only has to absorb
#: cross-version RNG/library drift — 2x slowdowns land far outside it.
DEFAULT_TOLERANCE = Tolerance(warn=0.10, fail=0.25)

#: Per-metric threshold overrides shipped with the repo: exact counters
#: (triangle counts, edge totals) must not drift at all; the ``reg``
#: scaling-guard metrics are wall-clock and get a correspondingly loose
#: band (its ratio baseline ~1.2 fails only past the 2x guard target).
TOLERANCE_OVERRIDES: dict[str, Tolerance] = {
    "*/triangles": Tolerance(warn=0.0, fail=0.0),
    "reg/*": Tolerance(warn=0.5, fail=1.0),
    # t13/t14's *_wall metrics (WAL append, checkpoint write, recovery
    # open, chaos scenario) are measured wall-clock on host filesystems;
    # only the modeled costs and their ratios carry the tight default band.
    "t13/*_wall": Tolerance(warn=1.0, fail=3.0),
    "t14/*_wall": Tolerance(warn=1.0, fail=3.0),
    # t15's per-op timings are wall-clock too; its *_parity metrics are the
    # tier-interchangeability proof and must never drift from 1.0.
    "t15/*_wall_ms": Tolerance(warn=1.0, fail=3.0),
    "t15/*_parity": Tolerance(warn=0.0, fail=0.0),
}

#: Units where a *smaller* current value is a regression.
HIGHER_IS_BETTER_UNITS = {"MEdge/s", "MVertex/s", "Mupd/s", "x"}

#: Units where a *larger* current value is a regression.
LOWER_IS_BETTER_UNITS = {"ms", "s", "MB", "ratio"}


def _direction(unit: str) -> str:
    if unit in HIGHER_IS_BETTER_UNITS:
        return "higher"
    if unit in LOWER_IS_BETTER_UNITS:
        return "lower"
    return "both"


def _tolerance_for(metric: str, overrides: dict) -> Tolerance:
    best: Tolerance | None = None
    best_len = -1
    for pattern, tol in overrides.items():
        if fnmatchcase(metric, pattern) and len(pattern) > best_len:
            best, best_len = tol, len(pattern)
    return best if best is not None else DEFAULT_TOLERANCE


@dataclass
class MetricComparison:
    """One baseline metric's verdict."""

    metric: str
    status: str  # pass | warn | fail | missing | new
    unit: str = ""
    direction: str = "both"
    baseline_value: float | None = None
    current_value: float | None = None
    change: float | None = None  # signed relative change vs baseline
    note: str = ""

    @property
    def change_pct(self) -> str:
        if self.change is None:
            return "—"
        return f"{self.change * 100:+.1f}%"


@dataclass
class ComparisonReport:
    """All metric verdicts plus the overall gate decision."""

    comparisons: list
    missing_fails: bool = True

    def by_status(self, status: str) -> list:
        return [c for c in self.comparisons if c.status == status]

    @property
    def ok(self) -> bool:
        if self.by_status("fail"):
            return False
        if self.missing_fails and self.by_status("missing"):
            return False
        return True

    def summary(self) -> str:
        counts = {
            s: len(self.by_status(s)) for s in ("pass", "warn", "fail", "missing", "new")
        }
        verdict = "OK" if self.ok else "REGRESSION"
        parts = ", ".join(f"{n} {s}" for s, n in counts.items() if n)
        return f"baseline comparison: {verdict} ({parts or 'no metrics'})"

    def format(self, verbose: bool = False) -> str:
        """Human-readable regression report (worst offenders first)."""
        lines = [self.summary()]
        order = {"fail": 0, "missing": 1, "warn": 2, "new": 3, "pass": 4}
        shown = [
            c
            for c in sorted(self.comparisons, key=lambda c: (order[c.status], c.metric))
            if verbose or c.status in ("fail", "missing", "warn")
        ]
        if shown:
            rows = [
                [
                    c.status.upper(),
                    c.metric,
                    c.baseline_value,
                    c.current_value,
                    c.change_pct,
                    c.unit or "—",
                    c.note or "—",
                ]
                for c in shown
            ]
            lines.append(
                format_table(
                    "",
                    ["status", "metric", "baseline", "current", "change", "unit", "note"],
                    rows,
                ).lstrip("\n")
            )
        return "\n".join(line for line in lines if line)


def _classify(baseline: float, current: float, direction: str, tol: Tolerance):
    """Return (status, signed relative change)."""
    if baseline == 0:
        change = 0.0 if current == 0 else float("inf") * (1 if current > 0 else -1)
    else:
        change = (current - baseline) / abs(baseline)
    if direction == "higher":
        regression = max(0.0, -change)
    elif direction == "lower":
        regression = max(0.0, change)
    else:
        regression = abs(change)
    if regression > tol.fail:
        return "fail", change
    if regression > tol.warn:
        return "warn", change
    return "pass", change


def compare_suites(
    baseline: SuiteResult,
    current: SuiteResult,
    tolerances: dict | None = None,
    missing_fails: bool = True,
) -> ComparisonReport:
    """Compare ``current`` against ``baseline``, metric by metric.

    ``tolerances`` maps ``fnmatch`` patterns over metric keys to
    :class:`Tolerance` overrides; it is layered on top of the shipped
    :data:`TOLERANCE_OVERRIDES` (caller patterns win on equal length).
    """
    overrides = dict(TOLERANCE_OVERRIDES)
    overrides.update(tolerances or {})
    base_metrics = baseline.metrics()
    cur_metrics = current.metrics()
    comparisons = []
    for key in sorted(base_metrics):
        base = base_metrics[key]
        direction = _direction(base.unit)
        cur = cur_metrics.get(key)
        if cur is None:
            comparisons.append(
                MetricComparison(
                    metric=key,
                    status="missing",
                    unit=base.unit,
                    direction=direction,
                    baseline_value=base.value,
                    note="metric absent from current run",
                )
            )
            continue
        tol = _tolerance_for(key, overrides)
        status, change = _classify(base.value, cur.value, direction, tol)
        note = ""
        if status != "pass":
            bound = tol.fail if status == "fail" else tol.warn
            note = f"{status} band ±{bound * 100:.0f}% ({direction})"
        comparisons.append(
            MetricComparison(
                metric=key,
                status=status,
                unit=base.unit,
                direction=direction,
                baseline_value=base.value,
                current_value=cur.value,
                change=change,
                note=note,
            )
        )
    for key in sorted(set(cur_metrics) - set(base_metrics)):
        cur = cur_metrics[key]
        comparisons.append(
            MetricComparison(
                metric=key,
                status="new",
                unit=cur.unit,
                direction=_direction(cur.unit),
                current_value=cur.value,
                note="not in baseline",
            )
        )
    return ComparisonReport(comparisons=comparisons, missing_fails=missing_fails)
