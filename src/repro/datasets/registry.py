"""Catalog of scaled stand-ins for the paper's Table I datasets.

Each entry reproduces one Table I dataset's *family* and degree statistics
at laptop scale (the paper runs 0.24M-265M edges on a 12 GB TITAN V; the
simulated substrate runs the same experiment shapes at thousandths of the
size).  ``paper_vertices`` / ``paper_edges`` keep the original sizes around
for the EXPERIMENTS.md paper-vs-measured tables.

All graphs are undirected (symmetric edge sets), like the SuiteSparse
matrices the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.coo import COO
from repro.datasets.delaunay import delaunay_graph
from repro.datasets.powerlaw import mesh_like_graph, powerlaw_graph
from repro.datasets.rgg import rgg_graph
from repro.datasets.road import road_graph
from repro.util.errors import ValidationError

__all__ = ["DatasetSpec", "DATASETS", "load", "DATASET_ORDER"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table I dataset and its scaled generator."""

    name: str
    family: str  # road | delaunay | rgg | mesh | social
    generator: Callable[[int], COO]
    paper_vertices: int
    paper_edges: int
    paper_avg_degree: float
    paper_max_degree: int

    def generate(self, seed: int = 0) -> COO:
        return self.generator(seed)


def _spec(name, family, gen, pv, pe, pavg, pmax) -> DatasetSpec:
    return DatasetSpec(name, family, gen, pv, pe, pavg, pmax)


#: Paper order (Table I, top to bottom).
DATASET_ORDER = [
    "luxembourg_osm",
    "germany_osm",
    "road_usa",
    "delaunay_n23",
    "delaunay_n20",
    "rgg_n_2_20_s0",
    "rgg_n_2_24_s0",
    "coAuthorsDBLP",
    "ldoor",
    "soc-LiveJournal1",
    "soc-orkut",
    "hollywood-2009",
]

DATASETS: dict[str, DatasetSpec] = {
    "luxembourg_osm": _spec(
        "luxembourg_osm", "road", lambda s=0: road_graph(4_000, seed=s), 114_000, 239_000, 2.1, 6
    ),
    "germany_osm": _spec(
        "germany_osm",
        "road",
        lambda s=0: road_graph(20_000, seed=s),
        11_500_000,
        24_700_000,
        2.1,
        13,
    ),
    "road_usa": _spec(
        "road_usa", "road", lambda s=0: road_graph(28_000, seed=s), 23_900_000, 57_710_000, 2.4, 9
    ),
    "delaunay_n23": _spec(
        "delaunay_n23",
        "delaunay",
        lambda s=0: delaunay_graph(14_000, seed=s),
        8_400_000,
        50_300_000,
        6.0,
        28,
    ),
    "delaunay_n20": _spec(
        "delaunay_n20",
        "delaunay",
        lambda s=0: delaunay_graph(4_000, seed=s),
        1_000_000,
        6_300_000,
        6.0,
        23,
    ),
    "rgg_n_2_20_s0": _spec(
        "rgg_n_2_20_s0",
        "rgg",
        lambda s=0: rgg_graph(4_000, 13.1, seed=s),
        1_000_000,
        13_800_000,
        13.1,
        36,
    ),
    "rgg_n_2_24_s0": _spec(
        "rgg_n_2_24_s0",
        "rgg",
        lambda s=0: rgg_graph(12_000, 16.0, seed=s),
        16_800_000,
        265_100_000,
        16.0,
        40,
    ),
    "coAuthorsDBLP": _spec(
        "coAuthorsDBLP",
        "social",
        lambda s=0: powerlaw_graph(4_000, 6.4, 2.5, seed=s),
        299_000,
        1_900_000,
        6.4,
        336,
    ),
    "ldoor": _spec(
        "ldoor",
        "mesh",
        lambda s=0: mesh_like_graph(4_000, 48.0, seed=s),
        952_000,
        45_500_000,
        47.7,
        76,
    ),
    "soc-LiveJournal1": _spec(
        "soc-LiveJournal1",
        "social",
        lambda s=0: powerlaw_graph(8_000, 17.2, 2.1, seed=s),
        4_800_000,
        85_700_000,
        17.2,
        20_000,
    ),
    "soc-orkut": _spec(
        "soc-orkut",
        "social",
        lambda s=0: powerlaw_graph(4_000, 60.0, 2.1, seed=s),
        3_000_000,
        212_700_000,
        70.9,
        27_000,
    ),
    "hollywood-2009": _spec(
        "hollywood-2009",
        "social",
        lambda s=0: powerlaw_graph(3_000, 80.0, 2.0, seed=s),
        1_100_000,
        112_800_000,
        98.9,
        11_000,
    ),
}


def load(name: str, seed: int = 0) -> COO:
    """Generate the scaled stand-in for a Table I dataset by name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValidationError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return spec.generate(seed)
