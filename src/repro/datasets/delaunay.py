"""Delaunay-triangulation graphs (delaunay_n20 / delaunay_n23).

Table I: degree min 3, max 23-28, mean 6.0, σ ≈ 1.33 — the exact
statistics of a Delaunay triangulation of uniform random points (mean
degree of a planar triangulation approaches 6 from below).  We triangulate
real random points with scipy, so the generated graphs *are* Delaunay
graphs, not approximations.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.coo import COO
from repro.util.errors import ValidationError

__all__ = ["delaunay_graph"]


def delaunay_graph(num_vertices: int, seed: int = 0) -> COO:
    """Delaunay triangulation of ``num_vertices`` uniform random points.

    Returns a symmetric, deduplicated COO.
    """
    if num_vertices < 4:
        raise ValidationError("Delaunay triangulation needs at least 4 points")
    rng = np.random.default_rng(seed)
    points = rng.random((int(num_vertices), 2))
    tri = Delaunay(points)
    s = tri.simplices
    # Each triangle contributes its three edges.
    src = np.concatenate([s[:, 0], s[:, 1], s[:, 2]]).astype(np.int64)
    dst = np.concatenate([s[:, 1], s[:, 2], s[:, 0]]).astype(np.int64)
    return COO(src, dst, int(num_vertices)).symmetrized().deduplicated()
