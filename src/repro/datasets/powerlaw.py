"""Heavy-tailed and mesh-like graphs (the Table I social/FEM datasets).

- :func:`powerlaw_graph` models soc-LiveJournal1 / soc-orkut /
  hollywood-2009 / coAuthorsDBLP: mean degree in the tens but maximum
  degree in the thousands (σ ≫ mean).  A Chung-Lu-style generator draws a
  Pareto expected-degree sequence and samples endpoints proportionally —
  vectorized (inverse-CDF sampling), no per-edge Python.

- :func:`mesh_like_graph` models ldoor (a FEM mesh: min 27, max 76, mean
  ≈ 48, σ ≈ 12): a ring lattice with binomially jittered extra links —
  near-regular, exactly the low-variance regime the paper uses ldoor for.
"""

from __future__ import annotations

import numpy as np

from repro.coo import COO
from repro.util.errors import ValidationError

__all__ = ["powerlaw_graph", "mesh_like_graph"]


def powerlaw_graph(
    num_vertices: int,
    mean_degree: float = 20.0,
    exponent: float = 2.2,
    seed: int = 0,
) -> COO:
    """Chung-Lu graph with Pareto expected degrees.

    Returns a symmetric, deduplicated COO whose degree distribution has a
    heavy tail (max degree typically 50-500x the mean, matching the
    soc-*/hollywood rows of Table I at scale).
    """
    if num_vertices < 2:
        raise ValidationError("powerlaw graphs need at least 2 vertices")
    if exponent <= 1.0:
        raise ValidationError("exponent must exceed 1")
    rng = np.random.default_rng(seed)
    n = int(num_vertices)
    # Pareto(α-1) expected degrees, rescaled to the target mean and capped
    # so no vertex expects more than ~sqrt(n·mean) partners (keeps the
    # Chung-Lu sampling well-defined).
    weights = rng.pareto(exponent - 1.0, size=n) + 1.0
    weights *= mean_degree / weights.mean()
    cap = np.sqrt(n * mean_degree)
    np.minimum(weights, cap, out=weights)

    m = int(n * mean_degree / 2)
    prob = weights / weights.sum()
    cdf = np.cumsum(prob)
    src = np.searchsorted(cdf, rng.random(m)).astype(np.int64)
    dst = np.searchsorted(cdf, rng.random(m)).astype(np.int64)
    keep = src != dst
    return COO(src[keep], dst[keep], n).symmetrized().deduplicated()


def mesh_like_graph(num_vertices: int, mean_degree: float = 48.0, seed: int = 0) -> COO:
    """Near-regular mesh (ldoor-like): ring lattice + jitter.

    Every vertex connects to its ``k`` nearest ring neighbors with a small
    random perturbation of ``k`` per vertex, giving σ/mean ≈ 0.25 like
    ldoor.
    """
    if num_vertices < 4:
        raise ValidationError("mesh graphs need at least 4 vertices")
    rng = np.random.default_rng(seed)
    n = int(num_vertices)
    half = max(int(mean_degree) // 2, 1)
    # Per-vertex reach jitter: ±25% of the base half-degree.
    reach = np.maximum(
        1, half + rng.integers(-half // 4 - 1, half // 4 + 2, size=n)
    ).astype(np.int64)
    total = int(reach.sum())
    src = np.repeat(np.arange(n, dtype=np.int64), reach)
    step = (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.concatenate([[0], np.cumsum(reach)[:-1]]), reach)
        + 1
    )
    dst = (src + step) % n
    return COO(src, dst, n).symmetrized().deduplicated()
