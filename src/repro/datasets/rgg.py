"""Random geometric graphs (rgg_n_2_20_s0 / rgg_n_2_24_s0).

Table I: degree min 0, max 36-40, mean 13-16, σ ≈ 3.6-4.0 — uniform random
points in the unit square connected within a radius.  The radius is chosen
so the expected degree ``n * π * r²`` hits the target mean; a KD-tree makes
pair enumeration O(n · deg).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.coo import COO
from repro.util.errors import ValidationError

__all__ = ["rgg_graph"]


def rgg_graph(num_vertices: int, mean_degree: float = 14.0, seed: int = 0) -> COO:
    """Random geometric graph with the requested expected mean degree.

    Returns a symmetric, deduplicated COO (isolated vertices possible,
    matching the min-degree-0 rows of Table I).
    """
    if num_vertices < 2:
        raise ValidationError("rgg needs at least 2 vertices")
    if mean_degree <= 0:
        raise ValidationError("mean_degree must be positive")
    rng = np.random.default_rng(seed)
    n = int(num_vertices)
    points = rng.random((n, 2))
    radius = np.sqrt(mean_degree / (np.pi * n))
    tree = cKDTree(points)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if pairs.shape[0] == 0:
        return COO(np.empty(0, np.int64), np.empty(0, np.int64), n)
    src = pairs[:, 0].astype(np.int64)
    dst = pairs[:, 1].astype(np.int64)
    return COO(src, dst, n).symmetrized().deduplicated()
