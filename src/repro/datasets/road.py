"""Road-network-like graphs (luxembourg_osm / germany_osm / road_usa).

Table I characterizes the road networks as: degree min 1, max 6-13,
mean ≈ 2.1-2.4, σ ≈ 0.4-0.9 — i.e. almost-path-like planar graphs.  The
generator lays vertices on a jittered grid and connects each to a subset
of its 4-neighborhood, then sprinkles a few shortcut edges (highway ramps)
to reach the observed maximum degrees.

These graphs are the paper's best case for single-bucket hash tables (and
for faimGraph): adjacency lists fit in a fraction of one slab.
"""

from __future__ import annotations

import numpy as np

from repro.coo import COO
from repro.util.errors import ValidationError

__all__ = ["road_graph"]


def road_graph(num_vertices: int, seed: int = 0, shortcut_fraction: float = 0.02) -> COO:
    """Generate an undirected road-like network (symmetric COO).

    Parameters
    ----------
    num_vertices:
        Approximate vertex count (rounded down to a full grid).
    seed:
        Generator seed.
    shortcut_fraction:
        Fraction of vertices that receive one extra long-range edge.

    Returns a symmetric, self-loop-free COO with mean degree ≈ 2.1-2.5.
    """
    if num_vertices < 4:
        raise ValidationError("road graphs need at least 4 vertices")
    rng = np.random.default_rng(seed)
    side = int(np.sqrt(num_vertices))
    n = side * side

    ids = np.arange(n, dtype=np.int64)
    row, col = ids // side, ids % side
    edges_src, edges_dst = [], []

    # Horizontal links with random gaps (roads are not complete grids;
    # dropping ~45% of the links brings the mean degree down to ~2.2).
    right = ids[col < side - 1]
    keep = rng.random(right.shape[0]) < 0.55
    edges_src.append(right[keep])
    edges_dst.append(right[keep] + 1)

    down = ids[row < side - 1]
    keep = rng.random(down.shape[0]) < 0.55
    edges_src.append(down[keep])
    edges_dst.append(down[keep] + side)

    # A few shortcuts create the max-degree tail (on/off ramps).
    num_short = int(n * shortcut_fraction)
    if num_short:
        s = rng.integers(0, n, num_short)
        d = np.minimum(s + rng.integers(2, side, num_short), n - 1)
        keep = s != d
        edges_src.append(s[keep])
        edges_dst.append(d[keep])

    src = np.concatenate(edges_src)
    dst = np.concatenate(edges_dst)
    return COO(src, dst, n).symmetrized().deduplicated()
