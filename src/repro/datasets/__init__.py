"""Synthetic dataset generators matching the paper's Table I shapes.

The paper benchmarks on twelve SuiteSparse/SNAP datasets spanning four
families; each family has a generator here that matches its degree
statistics (min/max/mean/σ) at configurable scale:

- :mod:`repro.datasets.road` — road networks (deg ≈ 2.1-2.4, σ < 1):
  luxembourg_osm, germany_osm, road_usa;
- :mod:`repro.datasets.delaunay` — Delaunay triangulations (deg ≈ 6.0,
  σ ≈ 1.3): delaunay_n20, delaunay_n23;
- :mod:`repro.datasets.rgg` — random geometric graphs (deg ≈ 13-16,
  σ ≈ 3.6-4.0): rgg_n_2_20_s0, rgg_n_2_24_s0;
- :mod:`repro.datasets.powerlaw` — heavy-tailed graphs (max degree in the
  thousands): coAuthorsDBLP, soc-LiveJournal1, soc-orkut, hollywood-2009
  (ldoor, a FEM mesh with deg ≈ 48 σ ≈ 12, gets a near-regular generator);
- :mod:`repro.datasets.rmat` — RMAT graphs for the Figure 2/3 load-factor
  sweeps.

:mod:`repro.datasets.registry` catalogs a scaled-down stand-in for each
Table I dataset so the benches can iterate "all twelve datasets" exactly
like the paper does.
"""

from repro.datasets.delaunay import delaunay_graph
from repro.datasets.powerlaw import mesh_like_graph, powerlaw_graph
from repro.datasets.registry import DATASETS, DatasetSpec, load
from repro.datasets.rgg import rgg_graph
from repro.datasets.rmat import rmat_graph
from repro.datasets.road import road_graph

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "delaunay_graph",
    "load",
    "mesh_like_graph",
    "powerlaw_graph",
    "rgg_graph",
    "rmat_graph",
    "road_graph",
]
