"""RMAT graph generator (the Figure 2/3 workload).

The paper's load-factor experiments use "directed RMAT graphs with 2^20
vertices but different average degree".  This is the standard recursive
matrix generator (Chakrabarti et al.): each edge picks one of four
quadrants per bit level with probabilities (a, b, c, d), fully vectorized
across edges (one random matrix per bit level, no per-edge Python).
"""

from __future__ import annotations

import numpy as np

from repro.coo import COO
from repro.util.errors import ValidationError

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    deduplicate: bool = False,
) -> COO:
    """Generate a directed RMAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edge_factor:
        Edges per vertex (|E| = edge_factor * 2**scale), duplicates
        included unless ``deduplicate``.
    a, b, c:
        Quadrant probabilities (d = 1 - a - b - c); the Graph500 defaults
        give the heavy-tailed degree distribution of the paper's figures.
    deduplicate:
        Drop duplicate pairs (the paper's insertion workloads allow
        duplicates, so the default keeps them).
    """
    if scale < 1 or scale > 30:
        raise ValidationError("scale must be in [1, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValidationError("quadrant probabilities must be non-negative")
    n = 1 << scale
    m = int(edge_factor * n)
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # One quadrant draw per bit level, vectorized over all edges.
    for level in range(scale):
        r = rng.random(m)
        # Partition [0,1) into a | b | c | d.  Quadrants as (src bit, dst
        # bit): a=(0,0), b=(0,1), c=(1,0), d=(1,1).
        in_b = (r >= a) & (r < a + b)
        in_c = (r >= a + b) & (r < a + b + c)
        in_d = r >= a + b + c
        src |= (in_c | in_d).astype(np.int64) << level
        dst |= (in_b | in_d).astype(np.int64) << level

    coo = COO(src, dst, n)
    return coo.deduplicated() if deduplicate else coo
