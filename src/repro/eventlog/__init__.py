"""First-class graph event log: typed events, cursors, bounded retention.

The :class:`repro.api.Graph` facade publishes every normalized edge batch
and every structural change through an :class:`EventLog`; the snapshot
delta-merge, the incremental analytics in :mod:`repro.stream`, and the
shard router in :mod:`repro.api.sharding` are all cursor consumers of the
same log.  See :mod:`repro.eventlog.log` for the full contract.
"""

from repro.eventlog.events import (
    EdgeBatch,
    Event,
    StructuralEvent,
    version_chain_intact,
)
from repro.eventlog.log import DEFAULT_RETENTION_ROWS, EventCursor, EventLog

__all__ = [
    "DEFAULT_RETENTION_ROWS",
    "EdgeBatch",
    "Event",
    "EventCursor",
    "EventLog",
    "StructuralEvent",
    "version_chain_intact",
]
