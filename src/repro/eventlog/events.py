"""Typed events of the graph event log.

Every mutation a facade applies is recorded as exactly one event:

- :class:`EdgeBatch` — a normalized batch of edge insertions or deletions
  (the arrays are the post-normalization batch the backend actually saw:
  self-loops dropped, intra-batch duplicates collapsed if the facade
  dedups, weights defaulted);
- :class:`StructuralEvent` — a mutation that cannot be expressed as an
  edge delta (vertex deletion, bulk build, rehash, tombstone flush).

Both carry the publisher's ``mutation_version`` observed immediately
*before* and *after* the backend dispatch.  A consumer that replays a
window of events can therefore prove the window is a faithful history:
the versions must chain (each event's ``after_version`` equals the next
event's ``before_version``) and the final ``after_version`` must equal
the live version — any mutation applied behind the publisher's back
breaks the chain and forces a cold fallback, with no per-consumer
version bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Event", "EdgeBatch", "StructuralEvent", "version_chain_intact"]

#: Reasons a :class:`StructuralEvent` can carry (the facade's structural
#: mutations; foreign publishers may add their own).
STRUCTURAL_REASONS = ("delete_vertices", "bulk_build", "rehash", "flush_tombstones")


@dataclass(frozen=True)
class Event:
    """Common header: position in the log + the version transition."""

    #: Monotone position in the log (0-based, gap-free at append time).
    seq: int
    #: Publisher's ``mutation_version`` immediately before the dispatch
    #: (``None`` when the backend does not version its mutations — such
    #: events can never prove a faithful window and always force cold).
    before_version: int | None
    #: Publisher's ``mutation_version`` immediately after the dispatch.
    after_version: int | None


@dataclass(frozen=True)
class EdgeBatch(Event):
    """One applied (normalized) batch of edge insertions or deletions."""

    is_insert: bool
    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray | None
    #: Rows this event accounts against the log's retention bound.
    #: Undirected publishers mirror each row internally, so this may be
    #: ``2 * len(src)``; it is also the row count a snapshot merge sorts.
    rows: int


@dataclass(frozen=True)
class StructuralEvent(Event):
    """A mutation with no edge-delta representation (see ``reason``).

    ``payload`` carries whatever is needed to *re-apply* the mutation on a
    replay consumer (the write-ahead log in :mod:`repro.persist`, a read
    replica): the deleted vertex-id array for ``"delete_vertices"``, the
    built :class:`repro.coo.COO` for ``"bulk_build"``.  Maintenance events
    (``"rehash"``, ``"flush_tombstones"``) carry ``None`` — they do not
    change the logical edge set, so replayers skip them.
    """

    reason: str
    payload: object | None = None


def version_chain_intact(events, base_version, live_version) -> bool:
    """True iff ``events`` is a provably complete history from
    ``base_version`` to ``live_version``.

    Requires every event to be versioned (no ``None``), the first to start
    at ``base_version``, consecutive events to chain ``after -> before``,
    every event to have actually advanced the version, and the last to
    land on ``live_version``.  An empty window is intact iff the versions
    already agree.
    """
    if base_version is None or live_version is None:
        return False
    expect = base_version
    for e in events:
        if e.before_version is None or e.after_version is None:
            return False
        if e.before_version != expect or e.after_version <= e.before_version:
            return False
        expect = e.after_version
    return expect == live_version
