"""An append-only, sequence-numbered event log with cursors and retention.

:class:`EventLog` is the spine the :class:`repro.api.Graph` facade, the
shard router, and the incremental analytics all share.  It replaces the
facade's former private ``_delta_log`` list, subscriber list, and ad-hoc
row accounting with one first-class object:

- **append-only, sequence-numbered** — every published event gets the
  next ``seq``; history is never rewritten;
- **cursor-based readers** — any number of consumers each hold an
  :class:`EventCursor` and pull the events published since their last
  read.  Readers are fully decoupled: one consumer draining the log does
  not affect another's position;
- **bounded retention** — the log retains at most ``retention_rows``
  edge-batch rows.  Older events are trimmed; a cursor that has fallen
  behind the retention horizon observes a *gap* on its next read and must
  fall back to a cold rebuild of whatever it was maintaining (exactly the
  old ``snapshot_delta_limit`` overflow semantics, now shared by every
  consumer);
- **push subscribers** — live observers (``on_event(event)`` objects or
  plain callables) notified after each append.  Notification iterates a
  snapshot copy of the subscriber list, so a subscriber unsubscribing
  (itself or a peer) from inside its callback never skips another
  subscriber, and a subscriber raising mid-batch neither corrupts the log
  nor starves the remaining subscribers (the first exception is re-raised
  after all have been notified).
"""

from __future__ import annotations

from collections import deque

from repro.eventlog.events import EdgeBatch, Event, StructuralEvent
from repro.util.errors import ValidationError

__all__ = ["EventLog", "EventCursor", "DEFAULT_RETENTION_ROWS"]

#: Default bound on retained edge-batch rows.  Past ~|E| retained rows an
#: incremental consumer stops beating a cold rebuild anyway; 2^16 keeps
#: the log's memory bounded regardless of graph size.
DEFAULT_RETENTION_ROWS = 1 << 16


class EventLog:
    """Append-only log of typed graph events (see module docstring)."""

    def __init__(self, retention_rows: int = DEFAULT_RETENTION_ROWS) -> None:
        if retention_rows < 0:
            raise ValueError("retention_rows must be non-negative")
        self.retention_rows = int(retention_rows)
        self._events: deque = deque()
        self._next_seq = 0
        self._horizon = 0  # seq of the oldest retained event
        self._retained_rows = 0
        self._subscribers: list = []

    # -- introspection -----------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next published event will receive."""
        return self._next_seq

    @property
    def horizon(self) -> int:
        """Oldest retained sequence number (reads below it are gapped)."""
        return self._horizon

    @property
    def retained_rows(self) -> int:
        """Edge-batch rows currently held against the retention bound."""
        return self._retained_rows

    def __len__(self) -> int:
        return len(self._events)

    # -- publishing --------------------------------------------------------------

    def publish_edge_batch(
        self,
        is_insert: bool,
        src,
        dst,
        weights,
        *,
        before_version,
        after_version,
        rows: int | None = None,
    ) -> EdgeBatch:
        """Append one normalized edge batch and notify subscribers.

        The arrays are copied: publishers fast-path clean caller buffers
        through normalization, so without a copy a logged batch could
        alias a buffer the caller refills before a reader replays it.
        """
        event = EdgeBatch(
            seq=self._next_seq,
            before_version=before_version,
            after_version=after_version,
            is_insert=bool(is_insert),
            src=src.copy(),
            dst=dst.copy(),
            weights=None if weights is None else weights.copy(),
            rows=int(src.shape[0]) if rows is None else int(rows),
        )
        self._append(event, event.rows)
        return event

    def publish_structural(
        self, reason: str, *, before_version, after_version, payload=None
    ) -> StructuralEvent:
        """Append one structural event (costs zero retention rows).

        ``payload`` is the replay-enabling detail (see
        :class:`~repro.eventlog.events.StructuralEvent`); publishers should
        pass copies, since the event may outlive the caller's buffers.
        """
        event = StructuralEvent(
            seq=self._next_seq,
            before_version=before_version,
            after_version=after_version,
            reason=str(reason),
            payload=payload,
        )
        self._append(event, 0)
        return event

    def _append(self, event: Event, rows: int) -> None:
        self._events.append(event)
        self._next_seq += 1
        self._retained_rows += rows
        while self._events and self._retained_rows > self.retention_rows:
            old = self._events.popleft()
            if isinstance(old, EdgeBatch):
                self._retained_rows -= old.rows
            self._horizon = old.seq + 1
        if not self._events:
            self._horizon = self._next_seq
        self._notify(event)

    # -- cursor reads ------------------------------------------------------------

    def cursor(self, seq: int | None = None) -> "EventCursor":
        """A new reader positioned at ``seq`` (default: the tail, so it
        observes only events published after its creation).

        ``seq`` must refer to a position the log has actually reached:
        negative values and values beyond :attr:`next_seq` raise
        :class:`ValidationError` instead of silently clamping — a caller
        holding such a seq has confused logs (or positions from a
        different log), and a clamped read would mask that as an empty or
        complete history.
        """
        return EventCursor(self, self._next_seq if seq is None else self._check_seq(seq))

    def events_since(self, seq: int) -> tuple[list, bool]:
        """``(events, gapped)`` for everything at or after ``seq``.

        ``gapped`` is True when retention already trimmed events the
        reader never saw (``seq < horizon``) — the returned (possibly
        empty) suffix is then an incomplete history and the reader must
        rebuild cold.  Like :meth:`cursor`, a negative ``seq`` or one
        beyond :attr:`next_seq` raises :class:`ValidationError`.
        """
        seq = self._check_seq(seq)
        gapped = seq < self._horizon
        start = max(seq, self._horizon)
        skip = start - self._horizon
        events = [e for i, e in enumerate(self._events) if i >= skip]
        return events, gapped

    def _check_seq(self, seq) -> int:
        seq = int(seq)
        if seq < 0 or seq > self._next_seq:
            raise ValidationError(
                f"seq {seq} is outside this log's published range "
                f"[0, {self._next_seq}] — cursors and reads must reference "
                "a position the log has actually reached"
            )
        return seq

    # -- push subscribers --------------------------------------------------------

    def subscribe(self, subscriber) -> None:
        """Register a live observer: an ``on_event(event)`` object or a
        plain callable.  Double subscription is idempotent."""
        if subscriber not in self._subscribers:
            self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber) -> None:
        """Remove a subscriber; removing an unknown one is a no-op."""
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    def _notify(self, event: Event) -> None:
        # Iterate a snapshot copy: a subscriber unsubscribing from inside
        # its own callback must not skip the next subscriber.  A raising
        # subscriber neither corrupts the (already appended) log nor
        # starves its peers; the first exception surfaces at the end.
        first_exc: BaseException | None = None
        for sub in tuple(self._subscribers):
            try:
                handler = getattr(sub, "on_event", sub)
                handler(event)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc


class EventCursor:
    """A pull-based reader position over an :class:`EventLog`."""

    def __init__(self, log: EventLog, seq: int) -> None:
        self.log = log
        self.position = int(seq)

    def peek(self) -> tuple[list, bool]:
        """``(pending_events, gapped)`` without advancing the cursor."""
        return self.log.events_since(self.position)

    def poll(self) -> tuple[list, bool]:
        """``(pending_events, gapped)``, advancing the cursor to the tail.

        Polling clears a gap: the cursor re-anchors at the live tail and
        subsequent reads are complete again (the consumer is expected to
        have rebuilt cold when ``gapped`` was True).
        """
        events, gapped = self.log.events_since(self.position)
        self.position = self.log.next_seq
        return events, gapped

    def pending_rows(self) -> int:
        """Retention rows of the pending edge batches (0 when gapped
        events were trimmed — those rows are unknowable)."""
        events, _ = self.peek()
        return sum(e.rows for e in events if isinstance(e, EdgeBatch))

    @property
    def lag(self) -> int:
        """Events published since this cursor's position."""
        return self.log.next_seq - self.position
