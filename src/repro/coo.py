"""COO edge-list container shared by the graph, baselines, and datasets.

The paper's bulk-build workload assumes "the input is given in a COO format
(i.e., a list of edges each defined by source vertex, destination vertex,
and edge value)" — this class is that list, with the handful of
vectorized normalizations every structure needs (self-loop removal,
deduplication, symmetrization, CSR conversion).

Instances are lightweight views over three parallel arrays; all transforms
return new instances and never mutate in place.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask
from repro.util.validation import as_int_array, check_equal_length

__all__ = ["COO"]


class COO:
    """An edge list ``(src[i], dst[i], weight[i])`` over ``num_vertices`` ids.

    Parameters
    ----------
    src, dst:
        Endpoint arrays (int64).
    num_vertices:
        Id-space size; inferred as ``max(endpoint) + 1`` when omitted.
    weights:
        Optional parallel weights; an unweighted COO stores ``None``.
    """

    __slots__ = ("src", "dst", "weights", "num_vertices")

    def __init__(self, src, dst, num_vertices: int | None = None, weights=None) -> None:
        self.src = as_int_array(src, "src")
        self.dst = as_int_array(dst, "dst")
        check_equal_length(("src", self.src), ("dst", self.dst))
        if weights is not None:
            weights = as_int_array(weights, "weights")
            check_equal_length(("src", self.src), ("weights", weights))
        self.weights = weights
        if num_vertices is None:
            num_vertices = (
                int(max(self.src.max(), self.dst.max())) + 1 if self.src.size else 0
            )
        if self.src.size and (
            self.src.min() < 0
            or self.dst.min() < 0
            or max(int(self.src.max()), int(self.dst.max())) >= num_vertices
        ):
            raise ValidationError("endpoints out of range for num_vertices")
        self.num_vertices = int(num_vertices)

    # -- basic properties -----------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    def weights_or_zeros(self) -> np.ndarray:
        return self.weights if self.weights is not None else np.zeros(self.num_edges, np.int64)

    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex id (duplicates counted as given)."""
        return np.bincount(self.src, minlength=self.num_vertices).astype(np.int64)

    # -- normalizations ---------------------------------------------------------

    def without_self_loops(self) -> "COO":
        keep = self.src != self.dst
        return self._select(keep)

    def deduplicated(self) -> "COO":
        """Keep the *last* occurrence of each (src, dst) pair.

        Matches the graph's replace semantics, so a deduplicated COO builds
        the identical structure its duplicated original would.
        """
        composite = (self.src << np.int64(32)) | self.dst
        return self._select(last_occurrence_mask(composite))

    def symmetrized(self) -> "COO":
        """Union with the reversed edge list (does not deduplicate)."""
        return COO(
            np.concatenate([self.src, self.dst]),
            np.concatenate([self.dst, self.src]),
            self.num_vertices,
            None if self.weights is None else np.concatenate([self.weights, self.weights]),
        )

    def permuted(self, seed: int = 0) -> "COO":
        """Shuffle edge order (batch streams should not be sorted by source)."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.num_edges)
        return self._select_indices(order)

    def _select(self, mask: np.ndarray) -> "COO":
        return self._select_indices(np.flatnonzero(mask))

    def _select_indices(self, idx: np.ndarray) -> "COO":
        return COO(
            self.src[idx],
            self.dst[idx],
            self.num_vertices,
            None if self.weights is None else self.weights[idx],
        )

    def batches(self, batch_size: int):
        """Yield consecutive COO slices of at most ``batch_size`` edges.

        Each yielded COO holds slice *views* of the parent arrays — no
        index array is materialized and no per-batch fancy-index copy is
        paid, so streaming a large COO is allocation-free per batch.
        """
        if batch_size <= 0:
            raise ValidationError("batch_size must be positive")
        for start in range(0, self.num_edges, batch_size):
            stop = min(start + batch_size, self.num_edges)
            yield COO(
                self.src[start:stop],
                self.dst[start:stop],
                self.num_vertices,
                None if self.weights is None else self.weights[start:stop],
            )

    # -- conversions -----------------------------------------------------------

    def to_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(row_ptr, col_idx, weights)`` sorted by (src, dst).

        Duplicates are preserved; call :meth:`deduplicated` first when a
        simple graph is required.  Raises :class:`ValidationError` if the
        arrays were mutated to hold ids outside ``[0, num_vertices)`` —
        ``np.bincount`` would otherwise silently grow the histogram and
        mis-bin every row after a stray ``src``, and a stray ``dst`` would
        plant an invalid column id for consumers to trip over.
        """
        for label, arr in (("src", self.src), ("dst", self.dst)):
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.num_vertices):
                raise ValidationError(
                    f"{label} contains ids outside [0, {self.num_vertices}); "
                    "the arrays were mutated after construction"
                )
        order = np.lexsort((self.dst, self.src))
        col = self.dst[order]
        w = self.weights_or_zeros()[order]
        counts = np.bincount(self.src, minlength=self.num_vertices)
        row_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return row_ptr, col, w

    def degree_stats(self) -> dict[str, float]:
        """Min/max/mean/std of out-degree — the columns of the paper's Table I."""
        deg = self.out_degrees()
        if deg.size == 0:
            return {"min": 0, "max": 0, "mean": 0.0, "std": 0.0}
        return {
            "min": int(deg.min()),
            "max": int(deg.max()),
            "mean": float(deg.mean()),
            "std": float(deg.std()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted" if self.weights is not None else "unweighted"
        return f"COO(|V|={self.num_vertices}, |E|={self.num_edges}, {kind})"
