"""B-tree adjacency lists — the paper's Section VII future-work direction.

"Other data structures can be used to represent adjacency lists.  For
instance, a B-Tree [Awad et al., PPoPP 2019] provides a different set of
operations as well as maintaining a sorted adjacency list, an optimization
that is useful in certain graph algorithms."

This subpackage explores that design point: :class:`BTreeGraph` stores one
B+-tree per vertex over 128-byte nodes (14 key/value lanes + fanout-15
children, matching the GPU B-tree's node-per-cache-line layout).  Compared
with the hash structure it trades slower point updates for *natively
sorted* adjacency — sorted iteration and range queries are free, and
triangle counting can use sorted intersections without the Table VIII
re-sort cost.  The ablation bench ``bench_ablation_btree.py`` quantifies
the trade.
"""

from repro.btree.graph import BTreeGraph
from repro.btree.tree import BPlusTreeArena

__all__ = ["BPlusTreeArena", "BTreeGraph"]
