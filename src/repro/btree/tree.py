"""A multi-tree B+-tree arena over 128-byte nodes.

Layout follows the GPU B-tree the paper cites (Awad et al., PPoPP 2019):
every node is one 128-byte cache line.  With 32-bit keys and values a leaf
holds up to 14 key/value pairs plus a next-leaf link; an internal node
holds up to 14 router keys and 15 children.  All trees share one
structure-of-arrays node pool, so per-node storage is three NumPy matrices
and the allocator is a bump pointer plus free list (the same discipline as
the slab pool).

Operations are scalar per tree (B-tree updates are inherently pointer-
chasing) but the node pool keeps memory traffic measurable: every node
touch is charged one ``slab_read``/``slab_write`` to the global counters,
so the cost model can price B-tree updates against hash updates in the
ablation bench.

Keys are unique per tree; insert-with-replace semantics matches the slab
hash so the two adjacency backends are drop-in comparable.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import get_counters
from repro.gpusim.memory import GrowableArray
from repro.util.errors import ValidationError

__all__ = ["BPlusTreeArena", "NODE_KEYS", "NODE_CHILDREN"]

#: Key/value lanes per 128-byte node.
NODE_KEYS = 14

#: Fanout of internal nodes.
NODE_CHILDREN = NODE_KEYS + 1

_NULL = -1


class BPlusTreeArena:
    """Many B+-trees sharing one node pool.

    Parameters
    ----------
    num_trees:
        Number of tree ids (the graph maps vertex ids to tree ids).
    """

    def __init__(self, num_trees: int, initial_nodes: int = 64) -> None:
        if num_trees < 0:
            raise ValidationError("num_trees must be non-negative")
        self.num_trees = int(num_trees)
        self.root = np.full(max(num_trees, 1), _NULL, dtype=np.int64)[: self.num_trees]
        cap = max(initial_nodes, 1)
        # One extra lane beyond the 128-byte payload: insert-then-split
        # briefly overfills a node before the split restores the bound
        # (scratch space only; occupancy never exceeds NODE_KEYS at rest).
        self._keys = GrowableArray(cap, np.int64, width=NODE_KEYS + 1, fill_value=0)
        self._vals = GrowableArray(cap, np.int64, width=NODE_KEYS + 1, fill_value=0)
        self._children = GrowableArray(cap, np.int64, width=NODE_CHILDREN + 1, fill_value=_NULL)
        self._num_keys = GrowableArray(cap, np.int64, fill_value=0)
        self._is_leaf = GrowableArray(cap, bool, fill_value=True)
        self._next_leaf = GrowableArray(cap, np.int64, fill_value=_NULL)
        self._bump = 0
        self._free: list[int] = []
        self._count = np.zeros(self.num_trees, dtype=np.int64)

    # -- node pool ---------------------------------------------------------

    def _alloc_node(self, leaf: bool) -> int:
        counters = get_counters()
        counters.slabs_allocated += 1
        counters.atomics += 1
        if self._free:
            nid = self._free.pop()
        else:
            nid = self._bump
            self._bump += 1
            for buf in (
                self._keys,
                self._vals,
                self._children,
                self._num_keys,
                self._is_leaf,
                self._next_leaf,
            ):
                buf.ensure(self._bump)
        self._keys.data[nid] = 0
        self._vals.data[nid] = 0
        self._children.data[nid] = _NULL
        self._num_keys.data[nid] = 0
        self._is_leaf.data[nid] = leaf
        self._next_leaf.data[nid] = _NULL
        return nid

    def _free_node(self, nid: int) -> None:
        get_counters().slabs_freed += 1
        self._free.append(int(nid))

    @property
    def num_allocated_nodes(self) -> int:
        return self._bump - len(self._free)

    @property
    def allocated_bytes(self) -> int:
        return self.num_allocated_nodes * 128

    def grow_trees(self, new_num_trees: int) -> None:
        if new_num_trees <= self.num_trees:
            return
        extra = new_num_trees - self.num_trees
        self.root = np.concatenate([self.root, np.full(extra, _NULL, dtype=np.int64)])
        self._count = np.concatenate([self._count, np.zeros(extra, dtype=np.int64)])
        self.num_trees = int(new_num_trees)

    def count(self, tree: int) -> int:
        return int(self._count[tree])

    # -- scalar operations ----------------------------------------------------

    def insert_one(self, tree: int, key: int, value: int = 0) -> bool:
        """Insert-or-replace; True iff the key was new."""
        counters = get_counters()
        root = int(self.root[tree])
        if root == _NULL:
            root = self._alloc_node(leaf=True)
            self.root[tree] = root
        # Descend, remembering the path for splits.
        path: list[tuple[int, int]] = []  # (node, child index taken)
        node = root
        while not self._is_leaf.data[node]:
            counters.slab_reads += 1
            nk = int(self._num_keys.data[node])
            idx = int(np.searchsorted(self._keys.data[node, :nk], key, side="right"))
            path.append((node, idx))
            node = int(self._children.data[node, idx])
        counters.slab_reads += 1

        nk = int(self._num_keys.data[node])
        keys = self._keys.data[node]
        pos = int(np.searchsorted(keys[:nk], key))
        if pos < nk and keys[pos] == key:
            self._vals.data[node, pos] = value  # replace
            counters.slab_writes += 1
            return False

        # Shift-in insert at the leaf.
        keys[pos + 1 : nk + 1] = keys[pos:nk]
        self._vals.data[node, pos + 1 : nk + 1] = self._vals.data[node, pos:nk]
        keys[pos] = key
        self._vals.data[node, pos] = value
        self._num_keys.data[node] = nk + 1
        counters.slab_writes += 1
        self._count[tree] += 1

        # Split upward while overfull.
        child = node
        while self._num_keys.data[child] > NODE_KEYS:
            child = self._split(tree, child, path.pop() if path else None)
        return True

    def _split(self, tree: int, node: int, parent_slot) -> int:
        """Split an overfull node; returns the node whose parent may now be
        overfull (the parent), for iterative propagation."""
        counters = get_counters()
        nk = int(self._num_keys.data[node])
        mid = nk // 2
        right = self._alloc_node(leaf=bool(self._is_leaf.data[node]))

        if self._is_leaf.data[node]:
            # Right keeps [mid:], separator = right's first key.
            rcount = nk - mid
            self._keys.data[right, :rcount] = self._keys.data[node, mid:nk]
            self._vals.data[right, :rcount] = self._vals.data[node, mid:nk]
            self._num_keys.data[right] = rcount
            self._num_keys.data[node] = mid
            self._next_leaf.data[right] = self._next_leaf.data[node]
            self._next_leaf.data[node] = right
            sep = int(self._keys.data[right, 0])
        else:
            # Internal: middle key moves up.
            sep = int(self._keys.data[node, mid])
            rcount = nk - mid - 1
            self._keys.data[right, :rcount] = self._keys.data[node, mid + 1 : nk]
            self._children.data[right, : rcount + 1] = self._children.data[
                node, mid + 1 : nk + 1
            ]
            self._num_keys.data[right] = rcount
            self._num_keys.data[node] = mid
        counters.slab_writes += 2

        if parent_slot is None:
            # New root.
            new_root = self._alloc_node(leaf=False)
            self._keys.data[new_root, 0] = sep
            self._children.data[new_root, 0] = node
            self._children.data[new_root, 1] = right
            self._num_keys.data[new_root] = 1
            self.root[tree] = new_root
            counters.slab_writes += 1
            return new_root
        parent, idx = parent_slot
        pk = int(self._num_keys.data[parent])
        self._keys.data[parent, idx + 1 : pk + 1] = self._keys.data[parent, idx:pk]
        self._children.data[parent, idx + 2 : pk + 2] = self._children.data[
            parent, idx + 1 : pk + 1
        ]
        self._keys.data[parent, idx] = sep
        self._children.data[parent, idx + 1] = right
        self._num_keys.data[parent] = pk + 1
        counters.slab_writes += 1
        return parent

    def delete_one(self, tree: int, key: int) -> bool:
        """Delete a key; True iff it existed.

        Uses leaf-level removal without eager rebalancing (lazy deletion:
        underfull leaves are tolerated, matching the GPU B-tree's
        delete-and-compact-later strategy).  Router keys may become stale
        upper bounds, which searches tolerate by construction.
        """
        counters = get_counters()
        node = int(self.root[tree])
        if node == _NULL:
            return False
        while not self._is_leaf.data[node]:
            counters.slab_reads += 1
            nk = int(self._num_keys.data[node])
            idx = int(np.searchsorted(self._keys.data[node, :nk], key, side="right"))
            node = int(self._children.data[node, idx])
        counters.slab_reads += 1
        nk = int(self._num_keys.data[node])
        keys = self._keys.data[node]
        pos = int(np.searchsorted(keys[:nk], key))
        if pos >= nk or keys[pos] != key:
            return False
        keys[pos : nk - 1] = keys[pos + 1 : nk]
        self._vals.data[node, pos : nk - 1] = self._vals.data[node, pos + 1 : nk]
        self._num_keys.data[node] = nk - 1
        counters.slab_writes += 1
        self._count[tree] -= 1
        return True

    def search_one(self, tree: int, key: int) -> tuple[bool, int]:
        counters = get_counters()
        node = int(self.root[tree])
        if node == _NULL:
            return False, 0
        while not self._is_leaf.data[node]:
            counters.slab_reads += 1
            nk = int(self._num_keys.data[node])
            idx = int(np.searchsorted(self._keys.data[node, :nk], key, side="right"))
            node = int(self._children.data[node, idx])
        counters.slab_reads += 1
        nk = int(self._num_keys.data[node])
        pos = int(np.searchsorted(self._keys.data[node, :nk], key))
        if pos < nk and self._keys.data[node, pos] == key:
            return True, int(self._vals.data[node, pos])
        return False, 0

    # -- sorted access (the B-tree's raison d'être) ------------------------------

    def _leftmost_leaf(self, tree: int) -> int:
        node = int(self.root[tree])
        if node == _NULL:
            return _NULL
        while not self._is_leaf.data[node]:
            node = int(self._children.data[node, 0])
        return node

    def items_sorted(self, tree: int) -> tuple[np.ndarray, np.ndarray]:
        """All (keys, values) in ascending key order via the leaf chain."""
        counters = get_counters()
        node = self._leftmost_leaf(tree)
        ks, vs = [], []
        while node != _NULL:
            counters.slab_reads += 1
            nk = int(self._num_keys.data[node])
            ks.append(self._keys.data[node, :nk].copy())
            vs.append(self._vals.data[node, :nk].copy())
            node = int(self._next_leaf.data[node])
        if not ks:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        return np.concatenate(ks), np.concatenate(vs)

    def range_query(self, tree: int, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """All (keys, values) with ``lo <= key < hi`` — the operation hash
        tables cannot serve and the paper's future work motivates."""
        counters = get_counters()
        node = int(self.root[tree])
        if node == _NULL or lo >= hi:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        while not self._is_leaf.data[node]:
            counters.slab_reads += 1
            nk = int(self._num_keys.data[node])
            idx = int(np.searchsorted(self._keys.data[node, :nk], lo, side="right"))
            node = int(self._children.data[node, idx])
        ks, vs = [], []
        while node != _NULL:
            counters.slab_reads += 1
            nk = int(self._num_keys.data[node])
            keys = self._keys.data[node, :nk]
            take = (keys >= lo) & (keys < hi)
            if take.any():
                ks.append(keys[take].copy())
                vs.append(self._vals.data[node, :nk][take].copy())
            if nk and keys[-1] >= hi:
                break
            node = int(self._next_leaf.data[node])
        if not ks:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        return np.concatenate(ks), np.concatenate(vs)

    def destroy_tree(self, tree: int) -> None:
        """Free every node of a tree (vertex deletion)."""
        root = int(self.root[tree])
        if root == _NULL:
            return
        stack = [root]
        while stack:
            node = stack.pop()
            if not self._is_leaf.data[node]:
                nk = int(self._num_keys.data[node])
                stack.extend(int(c) for c in self._children.data[node, : nk + 1])
            self._free_node(node)
        self.root[tree] = _NULL
        self._count[tree] = 0
