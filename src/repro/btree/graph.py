"""A dynamic graph with one B+-tree per adjacency list.

Exposes the same batched surface as :class:`repro.core.DynamicGraph` (so
the bench harness and the cross-structure semantics tests can drive it),
plus the two operations only a sorted adjacency can serve cheaply:

- :meth:`neighbors_sorted` — ascending adjacency without any sort pass;
- :meth:`neighbor_range` — all neighbors with ids in ``[lo, hi)``.

Updates route through the scalar tree operations grouped by source vertex
(B-tree updates are pointer-chasing by nature; the arena still charges
node traffic so the cost model can price them).
"""

from __future__ import annotations

import numpy as np

from repro.api.backend import GraphBackend
from repro.api.capabilities import Capabilities
from repro.btree.tree import BPlusTreeArena
from repro.coo import COO
from repro.gpusim.counters import get_counters
from repro.util.errors import ValidationError
from repro.util.groupby import last_occurrence_mask
from repro.util.validation import as_int_array, check_equal_length, check_in_range

__all__ = ["BTreeGraph"]


class BTreeGraph(GraphBackend):
    """B-tree-per-vertex dynamic graph (sorted adjacency maintained)."""

    capabilities = Capabilities(
        weighted=True,
        vertex_dynamic=True,
        sorted_neighbors=True,
        range_queries=True,
    )

    def __init__(self, num_vertices: int, weighted: bool = True) -> None:
        if num_vertices < 1:
            raise ValidationError("num_vertices must be positive")
        self.num_vertices = int(num_vertices)
        self.weighted = bool(weighted)
        self.directed = True
        self._arena = BPlusTreeArena(self.num_vertices)

    # -- helpers ---------------------------------------------------------------

    def _prep(self, src, dst, weights):
        self._reject_weights_if_unweighted(weights)
        src = as_int_array(src, "src")
        dst = as_int_array(dst, "dst")
        check_equal_length(("src", src), ("dst", dst))
        if weights is not None:
            weights = as_int_array(weights, "weights")
            check_equal_length(("src", src), ("weights", weights))
        if src.size:
            check_in_range(src, 0, self.num_vertices, "src")
            check_in_range(dst, 0, self.num_vertices, "dst")
        return src, dst, weights

    # -- updates ----------------------------------------------------------------

    def insert_edges(self, src, dst, weights=None) -> int:
        """Batched insert-with-replace; returns edges newly added."""
        src, dst, weights = self._prep(src, dst, weights)
        if src.size == 0:
            return 0
        get_counters().kernel_launches += 1
        keep = src != dst
        src, dst = src[keep], dst[keep]
        weights = weights[keep] if weights is not None else None
        if src.size == 0:
            return 0
        comp = (src << np.int64(32)) | dst
        last = last_occurrence_mask(comp)
        src, dst = src[last], dst[last]
        w = weights[last] if weights is not None else np.zeros(src.size, dtype=np.int64)
        # Group by source so each tree's root is resolved once per run.
        order = np.argsort(src, kind="stable")
        self._bump_version()
        added = 0
        for i in order.tolist():
            added += self._arena.insert_one(int(src[i]), int(dst[i]), int(w[i]))
        return added

    def delete_edges(self, src, dst) -> int:
        """Batched delete; returns edges removed."""
        src, dst, _ = self._prep(src, dst, None)
        if src.size == 0:
            return 0
        get_counters().kernel_launches += 1
        comp = np.unique((src << np.int64(32)) | dst)
        self._bump_version()
        removed = 0
        for c in comp.tolist():
            removed += self._arena.delete_one(int(c >> 32), int(c & 0xFFFFFFFF))
        return removed

    def delete_vertices(self, vertex_ids) -> int:
        """Delete vertices and all incident edges (undirected semantics:
        the ids are also removed from every other tree they appear in)."""
        vertex_ids = np.unique(as_int_array(vertex_ids, "vertex_ids"))
        if vertex_ids.size == 0:
            return 0
        check_in_range(vertex_ids, 0, self.num_vertices, "vertex_ids")
        self._bump_version()
        removed = 0
        doomed = set(vertex_ids.tolist())
        for v in vertex_ids.tolist():
            nbrs, _ = self.neighbors_sorted(v)
            removed += int(nbrs.size)
            for u in nbrs.tolist():
                if u not in doomed:
                    removed += self._arena.delete_one(int(u), int(v))
            self._arena.destroy_tree(int(v))
        return removed

    # -- queries ------------------------------------------------------------------

    def edge_exists(self, src, dst) -> np.ndarray:
        src, dst, _ = self._prep(src, dst, None)
        out = np.zeros(src.shape[0], dtype=bool)
        for i in range(src.shape[0]):
            out[i], _ = self._arena.search_one(int(src[i]), int(dst[i]))
        return out

    def edge_weights(self, src, dst) -> tuple[np.ndarray, np.ndarray]:
        src, dst, _ = self._prep(src, dst, None)
        found = np.zeros(src.shape[0], dtype=bool)
        vals = np.zeros(src.shape[0], dtype=np.int64)
        for i in range(src.shape[0]):
            found[i], vals[i] = self._arena.search_one(int(src[i]), int(dst[i]))
        return found, vals

    def neighbors(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        return self.neighbors_sorted(vertex)

    def neighbors_sorted(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """Adjacency in ascending order — no sort pass needed."""
        return self._arena.items_sorted(int(vertex))

    def neighbor_range(self, vertex: int, lo: int, hi: int) -> np.ndarray:
        """Neighbors with ids in [lo, hi) — the range query hash tables
        cannot serve (Section VII)."""
        keys, _ = self._arena.range_query(int(vertex), int(lo), int(hi))
        return keys

    def degree(self, vertex_ids) -> np.ndarray:
        vids = as_int_array(vertex_ids, "vertex_ids")
        check_in_range(vids, 0, self.num_vertices, "vertex_ids")
        return np.array([self._arena.count(int(v)) for v in vids.tolist()], dtype=np.int64)

    def num_edges(self) -> int:
        return int(self._arena._count.sum())

    # -- construction / export -------------------------------------------------------

    def bulk_build(self, coo: COO) -> int:
        if self.num_edges():
            raise ValidationError("bulk_build requires an empty graph")
        return self.insert_edges(coo.src, coo.dst, coo.weights if self.weighted else None)

    def export_coo(self) -> COO:
        srcs, dsts, ws = [], [], []
        for v in np.flatnonzero(self._arena.root != -1).tolist():
            k, val = self._arena.items_sorted(v)
            if k.size:
                srcs.append(np.full(k.size, v, dtype=np.int64))
                dsts.append(k)
                ws.append(val)
        if not srcs:
            e = np.empty(0, dtype=np.int64)
            return COO(e, e.copy(), self.num_vertices)
        return COO(
            np.concatenate(srcs),
            np.concatenate(dsts),
            self.num_vertices,
            weights=np.concatenate(ws) if self.weighted else None,
        )

    def sorted_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """(row_ptr, col_idx) — already sorted, by construction."""
        coo = self.export_coo()
        degs = np.bincount(coo.src, minlength=self.num_vertices)
        row_ptr = np.concatenate([[0], np.cumsum(degs)]).astype(np.int64)
        order = np.argsort(coo.src, kind="stable")  # dst already ascending per src
        return row_ptr, coo.dst[order]

    @property
    def allocated_bytes(self) -> int:
        return self._arena.allocated_bytes
