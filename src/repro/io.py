"""Graph I/O: MatrixMarket, plain edge lists, and NPZ snapshots.

The paper's datasets come from SuiteSparse (MatrixMarket ``.mtx``) and
SNAP (whitespace edge lists); a downstream user of this library needs to
load those formats and to checkpoint dynamic graphs.  Three formats:

- :func:`read_matrix_market` / :func:`write_matrix_market` — the
  ``coordinate`` subset of MatrixMarket (pattern / integer / real values;
  ``general`` and ``symmetric`` symmetry), 1-based indices per the spec;
- :func:`read_edge_list` / :func:`write_edge_list` — whitespace-separated
  ``src dst [weight]`` lines with ``#`` comments (SNAP style), 0-based;
- :func:`save_npz` / :func:`load_npz` — lossless binary COO snapshots.

Text paths ending in ``.gz`` are read and written through gzip
transparently (both archives distribute datasets gzipped), so
``read_edge_list("soc-a.txt.gz")`` works without a manual decompress.

All readers return :class:`repro.coo.COO`; weights are stored as int64
(real-valued MatrixMarket entries are rounded — this library's edge values
are 32-bit words, Section II-A footnote 1).
"""

from __future__ import annotations

import gzip
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.coo import COO
from repro.util.errors import ValidationError

__all__ = [
    "atomic_write",
    "read_matrix_market",
    "write_matrix_market",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
]


@contextmanager
def atomic_write(path, mode: str = "wb", *, fsync: bool = True):
    """Write ``path`` atomically: a sibling tmp file + ``os.replace``.

    The file handle yielded writes to ``<path>.tmp.<pid>``; only after the
    body completes is the tmp file (optionally fsynced and) renamed over
    the destination, so readers never observe a truncated file — an
    interrupted writer leaves the previous version intact.  On any
    exception the tmp file is removed and the destination untouched.
    ``.gz`` paths are gzip-compressed transparently in text modes (same
    convention as the readers below).
    """
    path = str(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    if path.endswith(".gz") and "b" not in mode:
        fh = gzip.open(tmp, mode + "t")
    else:
        fh = open(tmp, mode)
    try:
        yield fh
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    except BaseException:
        fh.close()
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    fh.close()
    os.replace(tmp, path)


def _open_text(path_or_file, mode: str):
    """Open a path as text, transparently decompressing/compressing
    ``.gz`` files (SNAP and SuiteSparse both distribute gzipped dumps);
    already-open file objects pass through unowned."""
    if isinstance(path_or_file, (str, Path)):
        if str(path_or_file).endswith(".gz"):
            return gzip.open(path_or_file, mode + "t"), True
        return open(path_or_file, mode), True
    return path_or_file, False


@contextmanager
def _text_sink(path_or_file):
    """Yield a writable text handle: paths write through
    :func:`atomic_write` (readers never see a truncated file), already-open
    file objects pass through unowned."""
    if isinstance(path_or_file, (str, Path)):
        with atomic_write(path_or_file, "w") as fh:
            yield fh
    else:
        yield path_or_file


# ---------------------------------------------------------------------------
# MatrixMarket
# ---------------------------------------------------------------------------


def read_matrix_market(path_or_file) -> COO:
    """Read a MatrixMarket coordinate file into a COO.

    Supports ``pattern`` (unweighted), ``integer``, and ``real`` fields and
    ``general`` / ``symmetric`` symmetry (symmetric entries are mirrored,
    diagonal not duplicated).  Square and rectangular matrices both map to
    a vertex-id space of ``max(rows, cols)``.
    """
    fh, owned = _open_text(path_or_file, "r")
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValidationError("not a MatrixMarket file (missing %%MatrixMarket)")
        parts = header.strip().split()
        if len(parts) < 5 or parts[1] != "matrix" or parts[2] != "coordinate":
            raise ValidationError(f"unsupported MatrixMarket header: {header.strip()}")
        field, symmetry = parts[3], parts[4]
        if field not in ("pattern", "integer", "real"):
            raise ValidationError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValidationError(f"unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, nnz = (int(x) for x in line.split())

        data = np.loadtxt(fh, ndmin=2) if nnz else np.empty((0, 2))
        if data.shape[0] != nnz:
            raise ValidationError(f"expected {nnz} entries, found {data.shape[0]}")
        src = data[:, 0].astype(np.int64) - 1
        dst = data[:, 1].astype(np.int64) - 1
        if field == "pattern":
            weights = None
        else:
            weights = np.round(data[:, 2]).astype(np.int64) if data.shape[1] > 2 else None
        n = max(rows, cols)
        coo = COO(src, dst, n, weights=weights)
        if symmetry == "symmetric":
            off_diag = src != dst
            coo = COO(
                np.concatenate([src, dst[off_diag]]),
                np.concatenate([dst, src[off_diag]]),
                n,
                weights=None
                if weights is None
                else np.concatenate([weights, weights[off_diag]]),
            )
        return coo
    finally:
        if owned:
            fh.close()


def write_matrix_market(path_or_file, coo: COO, comment: str | None = None) -> None:
    """Write a COO as a ``general`` MatrixMarket coordinate file
    (atomically when given a path — see :func:`atomic_write`)."""
    field = "pattern" if coo.weights is None else "integer"
    with _text_sink(path_or_file) as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{coo.num_vertices} {coo.num_vertices} {coo.num_edges}\n")
        if coo.weights is None:
            for s, d in zip(coo.src.tolist(), coo.dst.tolist()):
                fh.write(f"{s + 1} {d + 1}\n")
        else:
            for s, d, w in zip(coo.src.tolist(), coo.dst.tolist(), coo.weights.tolist()):
                fh.write(f"{s + 1} {d + 1} {w}\n")


# ---------------------------------------------------------------------------
# SNAP-style edge lists
# ---------------------------------------------------------------------------


def read_edge_list(path_or_file, num_vertices: int | None = None) -> COO:
    """Read a whitespace ``src dst [weight]`` edge list (# comments)."""
    fh, owned = _open_text(path_or_file, "r")
    try:
        rows = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            rows.append(line.split())
        if not rows:
            return COO([], [], num_vertices or 0)
        width = min(len(r) for r in rows)
        if width < 2:
            raise ValidationError("edge list lines need at least src and dst")
        src = np.array([int(r[0]) for r in rows], dtype=np.int64)
        dst = np.array([int(r[1]) for r in rows], dtype=np.int64)
        weights = (
            np.array([int(float(r[2])) for r in rows], dtype=np.int64)
            if width >= 3
            else None
        )
        return COO(src, dst, num_vertices, weights=weights)
    finally:
        if owned:
            fh.close()


def write_edge_list(path_or_file, coo: COO, header: bool = True) -> None:
    """Write a COO as a SNAP-style edge list (atomically when given a
    path — see :func:`atomic_write`)."""
    with _text_sink(path_or_file) as fh:
        if header:
            fh.write(f"# vertices: {coo.num_vertices} edges: {coo.num_edges}\n")
        if coo.weights is None:
            for s, d in zip(coo.src.tolist(), coo.dst.tolist()):
                fh.write(f"{s}\t{d}\n")
        else:
            for s, d, w in zip(coo.src.tolist(), coo.dst.tolist(), coo.weights.tolist()):
                fh.write(f"{s}\t{d}\t{w}\n")


# ---------------------------------------------------------------------------
# Binary snapshots
# ---------------------------------------------------------------------------


def save_npz(path, coo: COO) -> None:
    """Lossless binary COO snapshot (``numpy.savez_compressed``).

    Written atomically: ``savez`` streams into a tmp file that is renamed
    over ``path`` only once complete, so an interrupted save can never
    leave a truncated archive behind.
    """
    payload = {"src": coo.src, "dst": coo.dst, "num_vertices": np.int64(coo.num_vertices)}
    if coo.weights is not None:
        payload["weights"] = coo.weights
    path = str(path)
    if not path.endswith(".npz"):
        path += ".npz"  # savez appends it; replace must target the real name
    with atomic_write(path, "wb") as fh:
        np.savez_compressed(fh, **payload)


def load_npz(path) -> COO:
    """Load a :func:`save_npz` snapshot."""
    with np.load(path) as data:
        return COO(
            data["src"],
            data["dst"],
            int(data["num_vertices"]),
            weights=data["weights"] if "weights" in data else None,
        )
