"""repro — a reproduction of "Dynamic Graphs on the GPU" (Awad et al., 2020).

The package implements the paper's hash-table-per-vertex dynamic graph data
structure (on SlabHash) together with every substrate it depends on and the
baselines it is evaluated against, on a simulated-GPU substrate:

- :mod:`repro.core` — the dynamic graph (the paper's contribution);
- :mod:`repro.slabhash` — the slab hash (concurrent map & set) and slab
  allocator;
- :mod:`repro.gpusim` — warp primitives, the WCWS reference engine, and the
  kernel cost counters standing in for GPU hardware;
- :mod:`repro.baselines` — Hornet-, faimGraph-, GPMA-like structures and
  static CSR;
- :mod:`repro.analytics` — Gunrock-lite graph algorithms (triangle
  counting, BFS, PageRank, connected components, k-truss);
- :mod:`repro.datasets` — synthetic generators matching the paper's Table I
  dataset shapes;
- :mod:`repro.bench` — the evaluation harness regenerating Tables II-IX and
  Figures 2-3.

Quickstart::

    from repro import COO, DynamicGraph
    g = DynamicGraph(num_vertices=1000, weighted=True)
    g.insert_edges([0, 1, 2], [1, 2, 0], weights=[5, 6, 7])
    g.edge_exists([0], [1])          # -> array([ True])
"""

from repro.coo import COO
from repro.core import DynamicGraph

__version__ = "1.0.0"

__all__ = ["COO", "DynamicGraph", "__version__"]
