"""repro — a reproduction of "Dynamic Graphs on the GPU" (Awad et al., 2020).

The package implements the paper's hash-table-per-vertex dynamic graph data
structure (on SlabHash) together with every substrate it depends on and the
baselines it is evaluated against, on a simulated-GPU substrate:

- :mod:`repro.api` — the unified GraphBackend protocol, capability
  registry, and the ``Graph`` facade every consumer targets;
- :mod:`repro.core` — the dynamic graph (the paper's contribution; backend
  name ``"slabhash"``);
- :mod:`repro.slabhash` — the slab hash (concurrent map & set) and slab
  allocator;
- :mod:`repro.gpusim` — warp primitives, the WCWS reference engine, and the
  kernel cost counters standing in for GPU hardware;
- :mod:`repro.baselines` — Hornet-, faimGraph-, GPMA-like structures and
  static CSR;
- :mod:`repro.btree` — the B-tree-per-vertex backend (Section VII);
- :mod:`repro.analytics` — Gunrock-lite graph algorithms (triangle
  counting, BFS, SSSP, PageRank, connected components, k-core, k-truss),
  all backend-agnostic;
- :mod:`repro.datasets` — synthetic generators matching the paper's Table I
  dataset shapes;
- :mod:`repro.bench` — the evaluation harness regenerating Tables II-IX and
  Figures 2-3.

Quickstart (the unified API)::

    from repro import Graph
    g = Graph.create("slabhash", num_vertices=1000, weighted=True)
    g.insert_edges([0, 1, 2], [1, 2, 0], weights=[5, 6, 7])
    g.edge_exists([0], [1])          # -> array([ True])
    snap = g.snapshot()              # sorted-CSR view for analytics

    import repro.api as api
    api.backend_names()              # ('btree', 'faimgraph', 'gpma', 'hornet', 'slabhash')
    api.create("hornet", num_vertices=1000)   # raw backend by name

The legacy entry point still works (``from repro import DynamicGraph``)
and constructs the slab-hash backend directly.
"""

from repro.api import Capabilities, CSRSnapshot, Graph, GraphBackend
from repro.api import backend_names, capabilities, create, register
from repro.coo import COO

__version__ = "2.0.0"

__all__ = [
    "COO",
    "Capabilities",
    "CSRSnapshot",
    "DynamicGraph",
    "Graph",
    "GraphBackend",
    "backend_names",
    "capabilities",
    "create",
    "register",
    "__version__",
]

_DEPRECATED = {"DynamicGraph"}


def __getattr__(name: str):
    """Thin deprecation shim for the pre-registry entry points.

    ``from repro import DynamicGraph`` keeps working (it is also the
    lazy-import path that avoids loading the whole core package on
    ``import repro``) but new code should construct by backend name via
    :func:`repro.api.create` or :meth:`repro.api.Graph.create`.
    """
    if name in _DEPRECATED:
        import warnings

        warnings.warn(
            f"'from repro import {name}' is a legacy alias; prefer "
            "repro.api.create('slabhash', num_vertices=...) or "
            "repro.Graph.create('slabhash', ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import DynamicGraph

        return DynamicGraph
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
