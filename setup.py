"""Legacy setup shim.

The offline environment carries an older setuptools without PEP-517 wheel
support; this file enables ``pip install -e . --no-build-isolation`` there.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
