"""Setup shim for offline / legacy-setuptools environments.

The offline environment carries an older setuptools without PEP-517 wheel
support; this file enables ``pip install -e . --no-build-isolation`` there.
The one piece of metadata that matters to users is the optional ``[jit]``
extra: ``pip install .[jit]`` pulls the pinned numba the optional compiled
kernel tier needs (see ``docs/performance.md``).  The library itself
depends only on numpy — without the extra everything runs on the
pure-NumPy reference tier.
"""

from setuptools import find_packages, setup

setup(
    name="repro-dynamic-graphs",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    extras_require={
        # The optional compiled kernel tier (repro.kernels.jit).  Pinned to
        # a tested range; absent numba the package falls back to the
        # bit-identical reference tier automatically.
        "jit": ["numba>=0.59,<0.62"],
    },
)
