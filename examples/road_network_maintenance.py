"""Road-network maintenance: closures, reopenings, and reachability.

Run:  python examples/road_network_maintenance.py

Road networks are the paper's low-degree regime (Table I: mean degree
≈ 2.2), where every adjacency list fits in a single slab.  This example
simulates a traffic-management system: road segments close and reopen in
batches, intersections are demolished (vertex deletion), and a BFS-based
reachability check runs between update phases — the phase-concurrent
usage pattern the structure is designed for.
"""

import numpy as np

import repro.api as api
from repro.analytics import bfs, connected_components
from repro.datasets import road_graph


def reachable_fraction(g, source: int) -> float:
    dist = bfs(g, source)
    return float((dist >= 0).sum()) / dist.shape[0]


def main() -> None:
    rng = np.random.default_rng(11)
    city = road_graph(10_000, seed=3)
    n = city.num_vertices
    print(f"city road network: {city}")

    # The raw slabhash backend (not the facade): this example exercises the
    # structure-specific maintenance surface (stats, tombstone flushing).
    g = api.create("slabhash", n, weighted=True, directed=False)
    # Weights carry travel times (deciseconds).
    keep = city.src < city.dst
    travel = rng.integers(30, 600, int(keep.sum()))
    g.insert_edges(city.src[keep], city.dst[keep], travel)

    # Put the depot in the largest connected component.
    labels = connected_components(g)
    biggest = np.bincount(labels).argmax()
    depot = int(np.flatnonzero(labels == biggest)[0])
    print(f"initial reachability from depot {depot}: {reachable_fraction(g, depot):.1%}")

    snapshot = g.export_coo()
    closed_stack = []
    for day in range(1, 6):
        # Overnight closures: a random batch of existing segments.
        m = snapshot.num_edges
        pick = rng.choice(m, size=min(400, m), replace=False)
        cs, cd = snapshot.src[pick], snapshot.dst[pick]
        removed = g.delete_edges(cs, cd) // 2  # undirected pairs
        closed_stack.append((cs, cd))

        # Roadworks finish: reopen the batch closed two days ago.
        reopened = 0
        if len(closed_stack) > 2:
            os_, od_ = closed_stack.pop(0)
            reopened = g.insert_edges(os_, od_, rng.integers(30, 600, os_.size)) // 2

        # One intersection is demolished entirely.
        junction = int(rng.integers(0, n))
        g.delete_vertices([junction])

        frac = reachable_fraction(g, depot)
        labels = connected_components(g)
        num_components = np.unique(labels[labels != np.arange(n)]).size + int(
            (labels == np.arange(n)).sum()
        )
        print(
            f"day {day}: closed {removed:4d}, reopened {reopened:4d}, "
            f"demolished junction {junction:5d} -> "
            f"reachable {frac:.1%}, {num_components} components"
        )

    st = g.stats()
    print(
        f"\nstructure health: {st.live_entries} live entries, "
        f"{st.tombstones} tombstones, chain length {st.mean_chain_length:.2f}"
    )
    g.flush_tombstones()
    print(f"after tombstone flush: {g.stats().tombstones} tombstones remain")


if __name__ == "__main__":
    main()
