"""Kernel tiers: one workload, two implementations, identical counters.

Run:  python examples/kernel_tiers.py

The slab-probe and snapshot-merge hot paths dispatch through
:mod:`repro.kernels`: a fused pure-NumPy *reference* tier (always on)
and an optional numba-compiled *jit* tier.  This example pushes the
same seeded workload through both and shows the contract that makes
them interchangeable:

1. wall-clock differs (that is the jit tier's whole job — without
   numba installed the jit tier runs as an uncompiled Python fallback,
   so the "speedup" here may be a slowdown; install ``.[jit]`` for the
   real numbers);
2. everything else is **bit-identical**: the query results, the CSR
   snapshot, and every :mod:`repro.gpusim` device-model counter —
   because kernels are pure and all model charging happens in the
   drivers, a tier *cannot* change the modeled cost.

See docs/performance.md for the architecture.
"""

from time import perf_counter

import numpy as np

from repro.api import create
from repro.gpusim.counters import get_counters
from repro.kernels import current_tier, jit_available, use_tier


def run_workload():
    """A mixed insert/delete/search/snapshot run; returns results + cost."""
    rng = np.random.default_rng(2024)
    num_vertices = 512
    graph = create("slabhash", num_vertices=num_vertices, weighted=True)
    src = rng.integers(0, num_vertices, 4_000, dtype=np.int64)
    dst = rng.integers(0, num_vertices, 4_000, dtype=np.int64)
    w = rng.integers(1, 100, 4_000, dtype=np.int64)

    get_counters().reset()
    t0 = perf_counter()
    graph.insert_edges(src, dst, w)
    graph.delete_edges(src[:1_000], dst[:1_000])
    exists = np.asarray(graph.edge_exists(src, dst))
    snap = graph.snapshot()
    wall_ms = (perf_counter() - t0) * 1e3

    counters = {
        name: value
        for name, value in vars(get_counters()).items()
        if name != "_extra" and value
    }
    return exists, snap, counters, wall_ms


def main() -> None:
    runs = {}
    for tier in ("reference", "jit"):
        # force=True lets the jit tier run uncompiled when numba is absent.
        with use_tier(tier, force=True):
            assert current_tier() == tier
            runs[tier] = run_workload()
        label = tier if tier == "reference" else (
            "jit (numba)" if jit_available() else "jit (uncompiled fallback)"
        )
        print(f"{label:>26}: {runs[tier][3]:8.2f} ms wall-clock")

    ref_exists, ref_snap, ref_counters, _ = runs["reference"]
    jit_exists, jit_snap, jit_counters, _ = runs["jit"]

    assert np.array_equal(ref_exists, jit_exists)
    assert np.array_equal(ref_snap.row_ptr, jit_snap.row_ptr)
    assert np.array_equal(ref_snap.col_idx, jit_snap.col_idx)
    assert np.array_equal(ref_snap.weights, jit_snap.weights)
    print(f"\nresults identical across tiers: {ref_snap!r}")

    assert ref_counters == jit_counters
    print("modeled device counters identical across tiers:")
    for name, value in ref_counters.items():
        print(f"  {name:>16} = {value:,}")


if __name__ == "__main__":
    main()
