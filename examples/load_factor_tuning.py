"""Load-factor tuning: reproduce the Figure 2/3 trade-off on your workload.

Run:  python examples/load_factor_tuning.py

The load factor controls how many buckets each vertex's hash table gets
(``buckets = ceil(degree / (lf * slab_capacity))``).  Lower values buy
query speed with memory; higher values pack slabs full but grow chains.
This example sweeps the load factor on an RMAT graph and prints the
paper's three Figure 2 metrics plus the Figure 3 triangle-count time,
showing why the paper recommends ≈ 0.7.
"""

from repro.analytics.triangle_count import triangle_count_hash
from repro.bench.harness import time_call
import repro.api as api
from repro.datasets import rmat_graph


def main() -> None:
    coo = rmat_graph(scale=11, edge_factor=24, seed=1).symmetrized().deduplicated()
    print(f"workload: {coo} (RMAT, heavy-tailed)\n")
    header = (
        f"{'lf':>5} {'chain':>6} {'build MEdge/s':>14} "
        f"{'mem util':>9} {'mem KB':>8} {'TC model ms':>12}"
    )
    print(header)
    print("-" * len(header))

    best = None
    for lf in (0.3, 0.5, 0.7, 1.0, 1.5, 2.5, 4.0):
        g = api.create("slabhash", coo.num_vertices, load_factor=lf)
        build_rec, _ = time_call("build", g.bulk_build, coo, items=coo.num_edges)
        st = g.stats()
        tc_rec, triangles = time_call("tc", triangle_count_hash, g)
        tc_ms = tc_rec.model_millis
        print(
            f"{lf:>5.1f} {st.mean_bucket_load:>6.2f} {build_rec.throughput_m:>14,.0f} "
            f"{st.memory_utilization:>9.0%} {st.memory_bytes / 1024:>8,.0f} {tc_ms:>12.3f}"
        )
        if best is None or tc_ms < best[1]:
            best = (lf, tc_ms)

    print(
        f"\nbest query performance at load factor {best[0]} "
        f"(the paper's Figure 3 optimum is ≈ 0.7); "
        f"memory is cheapest at the high end — pick per workload."
    )


if __name__ == "__main__":
    main()
