"""A sharded graph service: scaling updates past one structure.

Run:  python examples/sharded_service.py

A social-network ingest pipeline outgrows a single device-resident
structure, so the vertex space is hash-partitioned across four per-shard
graphs behind one :class:`repro.api.ShardedGraph` facade.  The router
normalizes each batch once, routes edges to their source's owner shard,
and publishes every batch to its own event log — so the incremental
analytics attach to the sharded service exactly as they would to a single
graph, and the assembled global snapshot is bit-identical to one.
"""

import numpy as np

from repro.analytics import connected_components, pagerank
from repro.api import Graph, ShardedGraph
from repro.stream.incremental import IncrementalConnectedComponents


def main() -> None:
    rng = np.random.default_rng(12)
    n = 20_000
    shards = 4

    service = ShardedGraph.create("slabhash", n, num_shards=shards)
    reference = Graph.create("slabhash", num_vertices=n)  # ground truth
    cc = IncrementalConnectedComponents(service)

    # Ingest: follower batches arrive, routed to owner shards.
    total = 0
    for _ in range(12):
        src = rng.integers(0, n, 4_096, dtype=np.int64)
        dst = rng.integers(0, n, 4_096, dtype=np.int64)
        total += service.insert_edges(src, dst)
        reference.insert_edges(src, dst)
    per_shard = [g.num_edges() for g in service.shards]
    live = service.export_coo()
    cut = float(service.partitioner.cut_mask(live.src, live.dst).mean())
    print(f"ingested {total} edges across {shards} shards: {per_shard}")
    print(f"cut edges (endpoints on different shards): {cut:.0%}")

    # The modeled update cost: shards execute independently, so a batch
    # costs the slowest shard, not the sum.
    costs = service.update_costs
    print(
        f"modeled update speedup vs one structure: "
        f"{costs.serial_seconds / costs.parallel_seconds:.1f}x over {costs.calls} batches"
    )

    # Global analytics run unchanged on the assembled snapshot — and
    # match a single graph holding the same edges, bit for bit.
    snap = service.snapshot()
    ref_snap = reference.snapshot()
    assert np.array_equal(snap.row_ptr, ref_snap.row_ptr)
    assert np.array_equal(snap.col_idx, ref_snap.col_idx)
    assert np.allclose(pagerank(service), pagerank(reference))
    print(f"global snapshot assembled: |E| = {snap.num_edges}, identical to single graph")

    # Incremental analytics consume the router's event log directly.
    labels = cc.labels()
    assert np.array_equal(labels, connected_components(ref_snap))
    largest = int(np.bincount(labels).max())
    print(
        f"incremental CC over the sharded service ({cc.last_mode}): "
        f"largest community has {largest} members"
    )
    print("sharded service verified exact against a single graph")


if __name__ == "__main__":
    main()
