"""The whole delta-aware analytics family on one churn-style scenario.

Run:  python examples/incremental_analytics_family.py

One weighted churn-style schedule — insert bursts, a deletion window,
re-anchoring inserts — priced under all six analytics at once: connected
components, PageRank, triangle count, BFS, SSSP, and k-core.  The run
prints the per-phase, per-analytic modeled cost and serving mode, so you
can watch each analytic fold insert windows incrementally, fall back
cold on the deletion, and resume incrementally afterwards.  A final pass
with ``validate=True`` re-derives every cold reference after every phase
to prove the incremental answers are exact.

See docs/analytics.md for the family's contracts and fallback triggers.
"""

import numpy as np

from repro.stream import (
    ANALYTICS,
    IncrementalKCore,
    IncrementalSSSP,
    IncrementalTriangleCount,
    Phase,
    Scenario,
    run_scenario,
)

TOL = 1e-6


def churn_family_scenario() -> Scenario:
    """Weighted churn-style schedule (the stock ``churn_scenario`` is
    unweighted; SSSP needs weights, so this example declares its own)."""
    return Scenario(
        name="family-churn-2^11",
        family="powerlaw",
        num_vertices=1 << 11,
        avg_degree=6.0,
        weighted=True,
        phases=(
            Phase("insert", size=256, batches=2),
            Phase("compute"),
            Phase("insert", size=256),
            Phase("compute"),
            Phase("delete", size=96),
            Phase("compute"),
            Phase("insert", size=256),
            Phase("compute"),
        ),
    )


def main() -> None:
    scenario = churn_family_scenario()
    print(
        f"scenario {scenario.name}: {len(scenario.phases)} phases, "
        f"analytics {', '.join(ANALYTICS)}\n"
    )

    full = run_scenario(scenario, "slabhash", mode="full", tol=TOL, analytics=ANALYTICS)
    incr = run_scenario(scenario, "slabhash", mode="incremental", tol=TOL, analytics=ANALYTICS)

    print("per compute phase, per analytic (modeled device ms, incremental mode):")
    for p, q in zip(full.compute_phases(), incr.compute_phases()):
        print(f"  phase {q.index} (after {scenario.phases[q.index - 1].kind}):")
        for name in ANALYTICS:
            cold_ms = p.detail["analytic_model"][name] * 1e3
            warm_ms = q.detail["analytic_model"][name] * 1e3
            print(
                f"    {name:9s} full {cold_ms:8.4f} ms   "
                f"incr {warm_ms:8.4f} ms   ({q.detail['modes'][name]})"
            )
    speedup = full.mean_compute_model_seconds() / incr.mean_compute_model_seconds()
    print(f"\nfamily speedup, incremental vs full recompute: {speedup:.2f}x\n")

    # --- Exactness: validated after every phase --------------------------
    run_scenario(
        scenario,
        "slabhash",
        mode="incremental",
        tol=1e-10,
        max_iters=500,
        analytics=ANALYTICS,
        validate=True,
    )
    print("all six incremental analytics verified exact after every phase\n")

    # --- The subscriber API directly -------------------------------------
    from repro.api import Graph

    g = Graph.create("hornet", num_vertices=512, weighted=True)
    rng = np.random.default_rng(11)
    g.insert_edges(
        rng.integers(0, 512, 3000), rng.integers(0, 512, 3000), weights=rng.integers(1, 10, 3000)
    )
    tc = IncrementalTriangleCount(g)
    sssp = IncrementalSSSP(g, source=0)
    core = IncrementalKCore(g, k=3)
    tc.count(), sssp.distances(), core.members()  # prime (first query is cold)
    # Burst weights stay at the minimum: an upsert that *grew* an existing
    # edge's weight would (correctly) force SSSP back to a cold run.
    g.insert_edges(rng.integers(0, 512, 64), rng.integers(0, 512, 64), weights=np.ones(64))
    triangles = tc.count()
    reachable = int(np.count_nonzero(sssp.distances() >= 0))
    in_core = int(np.count_nonzero(core.members()))
    print(
        f"after one 64-edge burst: {triangles} triangles (TC {tc.last_mode}), "
        f"{reachable} reachable from 0 (SSSP {sssp.last_mode}), "
        f"{in_core} vertices in the {core.k}-core (k-core {core.last_mode})"
    )


if __name__ == "__main__":
    main()
