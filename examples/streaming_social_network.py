"""Streaming social-network analytics: the paper's motivating scenario.

Run:  python examples/streaming_social_network.py

A social graph ingests follower batches continuously while the analytics
pipeline re-computes triangle counts after every batch (the Table IX
"dynamic application" workload).  The same stream is fed to the Hornet-like
baseline, which must re-sort adjacency lists before each count — the
maintenance cost the hash structure avoids.  Modeled device times are
reported next to wall-clock so the comparison matches the paper's
accounting.
"""

import numpy as np

import repro.api as api
from repro.analytics.triangle_count import dynamic_triangle_count
from repro.datasets import powerlaw_graph


def main() -> None:
    rng = np.random.default_rng(42)

    # Bootstrap: an existing social network (heavy-tailed degrees).
    base = powerlaw_graph(3_000, mean_degree=20.0, seed=7)
    n = base.num_vertices
    print(f"bootstrap network: {base} (max degree {base.degree_stats()['max']})")

    # A stream of follower batches: mostly preferential (hub-seeking).
    hubs = np.argsort(np.bincount(base.src, minlength=n))[-50:]
    batches = []
    for _ in range(5):
        followers = rng.integers(0, n, 2_000)
        followees = np.where(
            rng.random(2_000) < 0.5,
            rng.choice(hubs, 2_000),
            rng.integers(0, n, 2_000),
        )
        batches.append((followers, followees))

    # Ours: hash-per-vertex graph; counts run directly on the tables.
    ours = api.create("slabhash", n)
    ours.bulk_build(base)
    ours_steps = dynamic_triangle_count(ours, batches, mode="hash")

    # Hornet-like baseline: must maintain sorted adjacency per batch.
    hornet = api.create("hornet", n)
    hornet.bulk_build(base)
    hornet_steps = dynamic_triangle_count(hornet, batches, mode="sorted")

    print(f"\n{'iter':>4} {'triangles':>10} | {'ours model ms':>14} | {'hornet model ms':>16}")
    cum_o = cum_h = 0.0
    for so, sh in zip(ours_steps, hornet_steps):
        assert so.triangles == sh.triangles
        cum_o += so.total_model * 1e3
        cum_h += (sh.total_model) * 1e3
        print(f"{so.iteration:>4} {so.triangles:>10,} | {cum_o:>14.3f} | {cum_h:>16.3f}")
    print(
        f"\ncumulative speedup over the sorted-list baseline: {cum_h / cum_o:.2f}x "
        "(road-like graphs favor us more; hub-heavy graphs favor sorted intersections — Table IX)"
    )

    # Account churn: a batch of accounts is deleted (Algorithm 2).
    doomed = rng.choice(n, size=20, replace=False)
    removed = ours.delete_vertices(doomed)
    print(f"\ndeleted {doomed.size} accounts -> {removed} edge slots removed")
    assert not ours.edge_exists(doomed, np.roll(doomed, 1)).any()


if __name__ == "__main__":
    main()
