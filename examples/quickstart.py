"""Quickstart: the dynamic graph's core operations in two minutes.

Run:  python examples/quickstart.py

Walks through the five operations the paper defines for a dynamic graph
data structure (Section II-A): adjacency retrieval, vertex insertion and
deletion, edge insertion and deletion — plus the batched queries and the
memory statistics that drive the load-factor tuning.
"""

import numpy as np

from repro import COO, DynamicGraph


def main() -> None:
    # A weighted directed graph with capacity for 1,000 vertex ids.
    g = DynamicGraph(num_vertices=1_000, weighted=True, load_factor=0.7)

    # --- Edge insertion (Algorithm 1 semantics) -------------------------
    # Batches may contain duplicates; the structure keeps edges unique and
    # the most recent weight wins.  Self-loops are dropped.
    src = [0, 0, 0, 1, 2, 2]
    dst = [1, 2, 1, 2, 0, 2]  # (0,1) twice; (2,2) is a self loop
    w = [10, 20, 11, 30, 40, 99]
    added = g.insert_edges(src, dst, weights=w)
    print(f"inserted {added} unique edges (batch of {len(src)})")
    assert added == 4

    # --- Queries ---------------------------------------------------------
    exists = g.edge_exists([0, 0, 1], [1, 9, 0])
    print(f"edgeExist (0,1)={exists[0]}  (0,9)={exists[1]}  (1,0)={exists[2]}")
    found, weights = g.edge_weights([0], [1])
    print(f"weight of (0,1) = {int(weights[0])}  (replace semantics kept the last write)")

    dsts, ws = g.neighbors(0)
    print(f"adjacency of 0: {sorted(zip(dsts.tolist(), ws.tolist()))}")

    # --- Edge deletion ----------------------------------------------------
    removed = g.delete_edges([0, 0], [2, 7])  # (0,7) never existed
    print(f"deleted {removed} edges; degree(0) is now {int(g.degree([0])[0])}")

    # --- Vertex operations (Section IV-D) ----------------------------------
    # Vertex insertion registers ids (growing the dictionary if needed) and
    # can pre-size tables when the expected degree is known.
    g.insert_vertices([500], expected_degree=[64])
    g.insert_edges(np.full(64, 500), np.arange(64))
    print(f"vertex 500 inserted with degree {int(g.degree([500])[0])}")

    removed = g.delete_vertices([500])
    print(f"vertex 500 deleted ({removed} edges removed with it)")
    assert not g.edge_exists([500], [3])[0]

    # --- Bulk build from COO (Table V workload) ------------------------------
    rng = np.random.default_rng(0)
    coo = COO(rng.integers(0, 1000, 5000), rng.integers(0, 1000, 5000), 1000)
    g2 = DynamicGraph(num_vertices=1000, weighted=False)
    g2.bulk_build(coo)
    st = g2.stats()
    print(
        f"bulk-built |E|={g2.num_edges()} in {st.num_slabs} slabs "
        f"({st.memory_utilization:.0%} lane utilization, {st.memory_bytes} bytes)"
    )

    # --- Snapshot for analytics ------------------------------------------------
    snapshot = g2.export_coo()
    print(f"exported snapshot: {snapshot}")


if __name__ == "__main__":
    main()
