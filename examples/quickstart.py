"""Quickstart: the unified graph API in two minutes.

Run:  python examples/quickstart.py

Walks through the five operations the paper defines for a dynamic graph
data structure (Section II-A) — adjacency retrieval, vertex insertion and
deletion, edge insertion and deletion — through the ``repro.api`` facade,
then shows the backend registry: the same code driving the paper's
structure, its competitors, and the capability flags that tell them apart.
"""

import numpy as np

import repro.api as api
from repro import COO, Graph


def main() -> None:
    # A weighted directed graph with capacity for 1,000 vertex ids,
    # constructed by backend name ("slabhash" is the paper's structure).
    g = Graph.create("slabhash", num_vertices=1_000, weighted=True, load_factor=0.7)

    # --- Edge insertion (Algorithm 1 semantics) -------------------------
    # Batches may contain duplicates; the structure keeps edges unique and
    # the most recent weight wins.  Self-loops are dropped (the facade's
    # default policy; pass self_loops="error" to reject them instead).
    src = [0, 0, 0, 1, 2, 2]
    dst = [1, 2, 1, 2, 0, 2]  # (0,1) twice; (2,2) is a self loop
    w = [10, 20, 11, 30, 40, 99]
    added = g.insert_edges(src, dst, weights=w)
    print(f"inserted {added} unique edges (batch of {len(src)})")
    assert added == 4

    # --- Queries ---------------------------------------------------------
    exists = g.edge_exists([0, 0, 1], [1, 9, 0])
    print(f"edgeExist (0,1)={exists[0]}  (0,9)={exists[1]}  (1,0)={exists[2]}")
    found, weights = g.edge_weights([0], [1])
    print(f"weight of (0,1) = {int(weights[0])}  (replace semantics kept the last write)")

    dsts, ws = g.neighbors(0)
    print(f"adjacency of 0: {sorted(zip(dsts.tolist(), ws.tolist()))}")

    # --- Edge deletion ----------------------------------------------------
    removed = g.delete_edges([0, 0], [2, 7])  # (0,7) never existed
    print(f"deleted {removed} edges; degree(0) is now {int(g.degree([0])[0])}")

    # --- Vertex deletion (capability-gated, Section IV-D) -------------------
    g.insert_edges(np.full(64, 500), np.arange(64))
    removed = g.delete_vertices([500])
    print(f"vertex 500 deleted ({removed} edges removed with it)")
    assert not g.edge_exists([500], [3])[0]

    # --- Bulk build from COO (Table V workload) ------------------------------
    rng = np.random.default_rng(0)
    coo = COO(rng.integers(0, 1000, 5000), rng.integers(0, 1000, 5000), 1000)
    g2 = Graph.create("slabhash", num_vertices=1000)
    g2.bulk_build(coo)
    print(f"bulk-built |E|={g2.num_edges()} in {g2.memory_bytes()} bytes")

    # --- Snapshot for analytics ------------------------------------------------
    snapshot = g2.snapshot()
    print(f"exported snapshot: {snapshot}")

    # --- The registry: every backend through the same surface -------------------
    print(f"\nregistered backends: {', '.join(api.backend_names())}")
    for name in api.backend_names():
        b = api.create(name, num_vertices=64)
        b.insert_edges([1, 2, 3], [2, 3, 1])
        caps = b.instance_capabilities()
        tags = ",".join(k for k, v in caps.flags().items() if v) or "-"
        print(f"  {name:10s} |E|={b.num_edges()}  capabilities: {tags}")


if __name__ == "__main__":
    main()
