"""Streaming scenarios with delta-aware incremental analytics.

Run:  python examples/streaming_incremental_analytics.py

The paper's workload is phase-concurrent: batches of edge updates
interleaved with query and compute phases.  This example declares one
seeded :class:`repro.stream.Scenario` (insert bursts + queries + compute
probes over an RMAT seed graph), runs it twice against the paper's
structure — once recomputing every compute phase from scratch, once with
the delta-subscribed incremental analytics — and prices the two against
each other with the calibrated device model.  A final pass with
``validate=True`` re-derives the cold references after every phase to
prove the incremental answers are exact.
"""

import numpy as np

from repro.stream import (
    IncrementalConnectedComponents,
    IncrementalPageRank,
    insert_heavy_scenario,
    run_scenario,
)

TOL = 1e-6


def main() -> None:
    scenario = insert_heavy_scenario(1 << 14, batch=256, rounds=3)
    print(
        f"scenario {scenario.name}: {len(scenario.phases)} phases over an "
        f"rmat graph with {scenario.num_vertices} vertices\n"
    )

    # --- The same schedule, two compute strategies -----------------------
    full = run_scenario(scenario, "slabhash", mode="full", tol=TOL)
    incr = run_scenario(scenario, "slabhash", mode="incremental", tol=TOL)

    print("per compute phase (modeled device ms):")
    for p, q in zip(full.compute_phases(), incr.compute_phases()):
        print(
            f"  phase {p.index}: full {p.model_seconds * 1e3:7.4f} ms "
            f"({p.detail['pr_sweeps']} cold sweeps)   "
            f"incremental {q.model_seconds * 1e3:7.4f} ms "
            f"({q.detail['pr_sweeps']} warm sweeps, CC {q.detail['cc_mode']})"
        )
    speedup = full.mean_compute_model_seconds() / incr.mean_compute_model_seconds()
    print(f"incremental vs full-recompute speedup: {speedup:.2f}x\n")

    # --- Exactness: validated after every phase --------------------------
    run_scenario(
        scenario, "slabhash", mode="incremental", tol=1e-10, max_iters=500, validate=True
    )
    print("incremental analytics verified exact after every phase")

    # --- The subscriber API directly --------------------------------------
    from repro.api import Graph

    g = Graph.create("hornet", num_vertices=512)
    rng = np.random.default_rng(7)
    g.insert_edges(rng.integers(0, 512, 2000), rng.integers(0, 512, 2000))
    cc = IncrementalConnectedComponents(g)   # subscribes to g's deltas
    pr = IncrementalPageRank(g, tol=TOL)
    pr.compute()
    g.insert_edges(rng.integers(0, 512, 64), rng.integers(0, 512, 64))
    touched = pr.touched_count
    labels = cc.labels()
    pr.compute()
    print(
        f"after one 64-edge burst: {len(np.unique(labels))} components "
        f"(CC served {cc.last_mode}), PageRank re-converged in "
        f"{pr.last_sweeps} warm sweeps from {touched} delta-touched vertices"
    )


if __name__ == "__main__":
    main()
