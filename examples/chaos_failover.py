"""Fault injection, shard failover, and degraded-mode serving.

Run:  python examples/chaos_failover.py

A sharded graph service has to keep answering while parts of it fail.
This example walks the full robustness story with :mod:`repro.chaos`
and the hardened :class:`repro.api.ShardedGraph`:

1. build a 4-shard durable service and wrap every shard in a seeded
   fault plan — the fault schedule is deterministic, so this script
   prints the same story on every run;
2. transient faults: the router's retry-with-backoff absorbs them
   transparently (the workload never notices);
3. a permanent fault kills a shard mid-batch: the dispatch is recorded
   as partial (exactly which shards applied), queries on the dead shard
   raise a typed ShardError, and reads continue through
   ``degraded_snapshot()`` — the dead shard served from its last cached
   snapshot, tagged with staleness;
4. failover: ``rebuild_shard()`` replays the shard's own write-ahead
   log into a fresh backend and ``redrive_pending()`` re-applies the
   recorded partial batches — the service converges to the exact state
   of a run where the fault never happened.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import PartialDispatchError, ShardedGraph, ShardError
from repro.chaos import FaultPlan, FaultSpec, FaultyBackend


def main() -> None:
    rng = np.random.default_rng(7)
    num_vertices = 2_000

    # --- 1. a durable sharded service under a seeded fault plan --------
    plan = FaultPlan(
        seed=42,
        specs=(
            # Two transient blips on shard 2's inserts, then one
            # permanent failure on shard 1 (its third insert batch).
            FaultSpec("shard2.insert_edges", kind="transient", max_fires=2),
            FaultSpec("shard1.insert_edges", kind="permanent", after=2),
        ),
    )
    service = ShardedGraph.create(
        "slabhash", num_vertices, num_shards=4, partial_dispatch="record"
    )
    for s, shard in enumerate(service.shards):
        shard.backend = FaultyBackend(shard.backend, plan, prefix=f"shard{s}")

    with tempfile.TemporaryDirectory() as tmp:
        service.attach_durability(Path(tmp) / "stores", fsync="never")

        def insert_batch(size=400):
            src = rng.integers(0, num_vertices, size, dtype=np.int64)
            dst = rng.integers(0, num_vertices, size, dtype=np.int64)
            return service.insert_edges(src, dst)

        # --- 2. transient faults: absorbed by retry ---------------------
        insert_batch()
        insert_batch()
        stats = service.fault_stats
        print(
            f"transient faults absorbed: {stats['transient_faults']} "
            f"(retries {stats['retries']}, health {service.health})"
        )
        healthy_snapshot = service.snapshot()  # also warms the read cache

        # --- 3. a shard dies mid-batch ----------------------------------
        insert_batch()
        report = service.pending[-1]
        print(
            f"partial dispatch recorded: applied shards {report.applied}, "
            f"failed {report.failed_shards}"
        )
        print(f"health after permanent fault: {service.health}")

        try:
            service.degree(np.arange(num_vertices, dtype=np.int64))
        except ShardError as exc:
            print(f"typed query failure: shard={exc.shard} op={exc.op}")

        degraded = service.degraded_snapshot()
        (shard, cached_version, live_version) = degraded.staleness[0]
        print(
            f"degraded read: {degraded.snapshot.num_edges} edges served, "
            f"shard {shard} stale (cached v{cached_version}, live v{live_version})"
        )
        assert degraded.snapshot.num_edges >= healthy_snapshot.num_edges

        # --- 4. failover: WAL replay + redrive --------------------------
        info = service.rebuild_shard(1)
        remaining = service.redrive_pending()
        print(
            f"rebuilt shard {info.shard}: replayed {info.replayed_events} WAL "
            f"events, re-drove pending batches ({remaining} left)"
        )

        # The recovered service equals a never-faulted replay of the same
        # batches: re-run the whole workload fault-free and compare.
        clean = ShardedGraph.create("slabhash", num_vertices, num_shards=4)
        clean_rng = np.random.default_rng(7)
        for _ in range(3):
            src = clean_rng.integers(0, num_vertices, 400, dtype=np.int64)
            dst = clean_rng.integers(0, num_vertices, 400, dtype=np.int64)
            clean.insert_edges(src, dst)
        got, want = service.snapshot(), clean.snapshot()
        assert np.array_equal(got.row_ptr, want.row_ptr)
        assert np.array_equal(got.col_idx, want.col_idx)
        print("recovered service verified bit-identical to a never-faulted run")
        assert service.health == ["healthy"] * 4

        # A partial dispatch can also *raise* on demand: flip the policy.
        service.partial_dispatch = "raise"
        plan.arm("shard3.insert_edges", kind="permanent")
        try:
            insert_batch()
        except PartialDispatchError as exc:
            print(
                f"strict mode: PartialDispatchError applied={exc.report.applied} "
                f"failed={exc.report.failed_shards}"
            )
        service.stores.close()


if __name__ == "__main__":
    main()
