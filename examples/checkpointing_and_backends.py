"""Checkpointing, interchange formats, and the B-tree adjacency backend.

Run:  python examples/checkpointing_and_backends.py

A logistics workload: a weighted delivery network is built, routed with
SSSP, checkpointed to disk (NPZ + MatrixMarket for interchange), restored,
and finally loaded into the B-tree backend (the paper's Section VII
future-work design) to answer the one query hash tables cannot serve:
"which of this hub's neighbors have ids in a given range?" (range queries
over sorted adjacency).

The snapshots written here are one-shot interchange files.  For a
continuously mutating graph that must survive crashes — write-ahead
logging, checkpoint rotation, tail replay, read replicas — see
:mod:`repro.persist` and ``examples/durable_service.py``.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analytics import sssp
from repro.api import Graph
from repro.datasets import delaunay_graph
from repro.io import load_npz, read_matrix_market, save_npz, write_matrix_market


def main() -> None:
    rng = np.random.default_rng(8)

    # Build a weighted delivery network (planar, Delaunay-like).
    net = delaunay_graph(2_000, seed=4)
    weights = rng.integers(1, 50, net.num_edges)  # minutes per leg
    g = Graph.create("slabhash", num_vertices=net.num_vertices, weighted=True)
    g.insert_edges(net.src, net.dst, weights)
    print(f"network: {net} — {g.num_edges()} directed legs")

    # Route: shortest delivery times from the depot.
    depot = 0
    dist = sssp(g, depot)
    reachable = dist[dist >= 0]
    print(
        f"SSSP from depot {depot}: {reachable.size} reachable stops, "
        f"median time {int(np.median(reachable))} min, max {int(reachable.max())} min"
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # Checkpoint the live graph (lossless binary).
        snap = g.export_coo()
        save_npz(tmp / "network.npz", snap)
        print(f"checkpointed to network.npz ({(tmp / 'network.npz').stat().st_size} bytes)")

        # Interchange: MatrixMarket for other tools.
        write_matrix_market(tmp / "network.mtx", snap, comment="delivery network")
        again = read_matrix_market(tmp / "network.mtx")
        assert again.num_edges == snap.num_edges

        # Restore into a fresh structure; routing results are identical.
        restored = Graph.create("slabhash", num_vertices=net.num_vertices, weighted=True)
        restored.bulk_build(load_npz(tmp / "network.npz"))
        assert np.array_equal(sssp(restored, depot), dist)
        print("restored checkpoint reproduces SSSP exactly")

    # The B-tree backend: sorted adjacency and range queries for free.  The
    # capability registry tells consumers which backends serve which query.
    bt = Graph.create("btree", num_vertices=net.num_vertices, weighted=True)
    assert bt.capabilities.range_queries and bt.capabilities.sorted_neighbors
    assert not g.capabilities.range_queries  # the hash structure cannot
    bt.bulk_build(snap)
    hub = int(np.argmax(np.bincount(snap.src)))
    nbrs, _ = bt.neighbors(hub)  # ascending, no sort pass (sorted_neighbors)
    lo, hi = int(nbrs[len(nbrs) // 4]), int(nbrs[3 * len(nbrs) // 4])
    in_range = bt.neighbor_range(hub, lo, hi)
    print(
        f"\nB-tree backend: hub {hub} has {nbrs.size} neighbors (sorted, no sort pass); "
        f"{in_range.size} of them have ids in [{lo}, {hi}) — a range query the "
        "hash structure cannot serve (paper §VII)"
    )


if __name__ == "__main__":
    main()
