"""Durable graphs: write-ahead logging, checkpoints, and crash recovery.

Run:  python examples/durable_service.py

A long-lived graph service must survive its own process dying: every
mutation is framed into a write-ahead log (WAL) as it is applied, and
periodic checkpoints bound how much of that log recovery has to replay.
This example walks the full lifecycle with :mod:`repro.persist`:

1. open a durable store and stream edge batches into it;
2. cut a checkpoint, then keep mutating (the WAL tail past the
   checkpoint is exactly what recovery will replay);
3. crash — the process "dies" with the log mid-record;
4. recover: latest valid checkpoint + WAL-tail replay reproduces the
   lost graph bit-for-bit, discarding the torn final record;
5. follow the log from a read-only replica that serves analytics while
   the writer keeps publishing.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analytics import connected_components
from repro.persist import list_segments, open_graph


def main() -> None:
    rng = np.random.default_rng(11)
    num_vertices = 4_000

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "service"

        # --- 1. a durable writer: every batch lands in the WAL ----------
        dg = open_graph(store, "slabhash", num_vertices=num_vertices, fsync="batch")
        for _ in range(20):
            src = rng.integers(0, num_vertices, 512, dtype=np.int64)
            dst = rng.integers(0, num_vertices, 512, dtype=np.int64)
            dg.graph.insert_edges(src, dst)
        print(f"writer: {dg.graph.num_edges()} edges, WAL seq {dg.wal.next_seq}")

        # --- 2. checkpoint, then keep going -----------------------------
        manifest = dg.checkpoint()
        print(
            f"checkpoint: seq {manifest.seq}, {manifest.num_edges} edges, "
            f"{manifest.npz_path.stat().st_size / 1024:.0f} KiB"
        )
        for _ in range(4):
            src = rng.integers(0, num_vertices, 512, dtype=np.int64)
            dst = rng.integers(0, num_vertices, 512, dtype=np.int64)
            dg.graph.insert_edges(src, dst)
        dg.graph.delete_edges(src[:64], dst[:64])
        dg.sync()
        live = dg.graph.snapshot()  # ground truth the crash will destroy

        # --- 3. crash: the log ends mid-record --------------------------
        # Simulate the process dying while appending: the writer is
        # abandoned unclosed and a partial record header lands at the tail.
        tail_segment = list_segments(store / "wal")[-1]
        with open(tail_segment, "ab") as fh:
            fh.write(b"WREC\x40\x00")  # torn: header cut short mid-append
        print(f"crash: abandoned writer, torn tail in {tail_segment.name}")

        # --- 4. recover --------------------------------------------------
        recovered = open_graph(store, fsync="batch")
        assert recovered.repaired_torn_tail
        print(
            f"recover: checkpoint seq {recovered.recovered_checkpoint.seq} "
            f"+ {recovered.replayed_events} replayed WAL events "
            "(torn record discarded)"
        )
        snap = recovered.graph.snapshot()
        assert np.array_equal(snap.row_ptr, live.row_ptr)
        assert np.array_equal(snap.col_idx, live.col_idx)
        print("recovered graph is bit-identical to the lost instance")

        # --- 5. a read replica follows the writer ------------------------
        replica = open_graph(store, read_only=True)
        src = rng.integers(0, num_vertices, 256, dtype=np.int64)
        dst = rng.integers(0, num_vertices, 256, dtype=np.int64)
        recovered.graph.insert_edges(src, dst)
        recovered.sync()
        applied = replica.tail()
        print(f"replica tailed {applied} new event(s) behind the writer")
        labels = connected_components(replica.graph.snapshot())
        print(f"replica analytics: {np.unique(labels).size} connected components")

        replica.close()
        recovered.close()


if __name__ == "__main__":
    main()
